package service

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/storage"
)

func TestHTTPQueryIDSupplied(t *testing.T) {
	srv, _ := newTestServer(t)

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Query-Id", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Query-Id"); got != "trace-me-42" {
		t.Fatalf("supplied query id echoed as %q, want trace-me-42", got)
	}
}

func TestHTTPQueryIDGenerated(t *testing.T) {
	srv, _ := newTestServer(t)

	// Absent, oversized and non-printable ids all get a generated one.
	bad := []string{"", strings.Repeat("x", maxQueryIDLen+1), "has space", "has\ttab"}
	seen := map[string]bool{}
	for _, id := range bad {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Query-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Query-Id")
		if got == id || !strings.HasPrefix(got, "q") || !ValidQueryID(got) {
			t.Fatalf("id %q answered with %q, want a generated q<n>", id, got)
		}
		if seen[got] {
			t.Fatalf("generated id %q repeated", got)
		}
		seen[got] = true
	}
}

func TestValidQueryID(t *testing.T) {
	for id, want := range map[string]bool{
		"q1":                                 true,
		"load-2026-08-08T12:00":              true,
		strings.Repeat("x", maxQueryIDLen):   true,
		"":                                   false,
		strings.Repeat("x", maxQueryIDLen+1): false,
		"two words":                          false,
		"ünïcode":                            false,
	} {
		if got := ValidQueryID(id); got != want {
			t.Errorf("ValidQueryID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestQueryIDStampsWAL follows a correlation id from the write API to the
// commit stamp replication ships: the insert's X-Query-Id must come back
// from the manager as the newest commit's id.
func TestQueryIDStampsWAL(t *testing.T) {
	s, mgr := openPersistent(t, t.TempDir(), Config{Workers: 1})
	defer s.Close()

	if _, err := s.Load(LoadSpec{
		Table: "ev", Format: "csv", CreateSpec: "id:int64", Layout: "column",
		QueryID: "load-1",
	}, strings.NewReader("1\n2\n")); err != nil {
		t.Fatal(err)
	}
	if _, _, qid := mgr.LastCommit(); qid != "load-1" {
		t.Fatalf("after load, stamped id = %q, want load-1", qid)
	}

	ins := plan.Insert{Table: "ev", Rows: [][]storage.Word{{storage.EncodeInt(3)}}}
	if _, _, err := s.QueryEx(ins, QueryOpts{QueryID: "write-7"}); err != nil {
		t.Fatal(err)
	}
	seq, nanos, qid := mgr.LastCommit()
	if qid != "write-7" {
		t.Fatalf("after insert, stamped id = %q, want write-7", qid)
	}
	if seq <= 0 || nanos <= 0 {
		t.Fatalf("commit stamp seq=%d nanos=%d, want both > 0", seq, nanos)
	}
}

func TestHTTPEvents(t *testing.T) {
	srv, s := newTestServer(t)

	s.Event(EventPromote, "promoted", map[string]string{"term": "2"})
	s.Event(EventFence, "fenced", nil)
	s.Event(EventDemote, "demoted", nil)

	resp, out := get(t, srv.URL+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	events := out["events"].([]any)
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %v", len(events), out)
	}
	for i, kind := range []string{EventPromote, EventFence, EventDemote} {
		e := events[i].(map[string]any)
		if e["kind"] != kind {
			t.Fatalf("event[%d].kind = %v, want %s", i, e["kind"], kind)
		}
		if i > 0 && e["seq"].(float64) <= events[i-1].(map[string]any)["seq"].(float64) {
			t.Fatalf("event seqs not increasing: %v", events)
		}
	}
	if events[0].(map[string]any)["data"].(map[string]any)["term"] != "2" {
		t.Fatalf("promote event lost its data: %v", events[0])
	}

	// The returned cursor resumes exactly after the page.
	next := out["next"].(float64)
	s.Event(EventResync, "resynced", nil)
	resp, out = get(t, srv.URL+"/events?since="+strconv.Itoa(int(next)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events since status = %d", resp.StatusCode)
	}
	events = out["events"].([]any)
	if len(events) != 1 || events[0].(map[string]any)["kind"] != EventResync {
		t.Fatalf("since=%v returned %v, want just the resync", next, out)
	}

	// Paging: limit=2 returns the first two and a cursor to the rest.
	_, out = get(t, srv.URL+"/events?limit=2")
	if n := len(out["events"].([]any)); n != 2 {
		t.Fatalf("limit=2 returned %d events", n)
	}

	resp, _ = get(t, srv.URL+"/events?since=borked")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPHistory(t *testing.T) {
	srv, s := newTestServer(t)

	if _, err := s.Query(DemoQuery(0.01)); err != nil {
		t.Fatal(err)
	}
	s.StartHistory(time.Hour) // primes the ring; the hour tick never fires
	time.Sleep(10 * time.Millisecond)
	if _, err := s.Query(DemoQuery(0.01)); err != nil {
		t.Fatal(err)
	}
	sample := s.SampleHistory()
	if sample.QPS <= 0 || sample.P50Ms <= 0 {
		t.Fatalf("sample after a query: %+v, want positive qps and p50", sample)
	}

	resp, out := get(t, srv.URL+"/history")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history status = %d", resp.StatusCode)
	}
	if got := out["intervalSeconds"].(float64); got != 3600 {
		t.Fatalf("intervalSeconds = %v, want 3600", got)
	}
	samples := out["samples"].([]any)
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1", len(samples))
	}
	if qps := samples[0].(map[string]any)["qps"].(float64); qps <= 0 {
		t.Fatalf("served sample qps = %v, want > 0", qps)
	}
}

func TestHistoryRingWraps(t *testing.T) {
	s := New(NewDemoDB(1000), Config{Workers: 1})
	defer s.Close()
	s.StartHistory(time.Hour)
	cap := historyCapacity(time.Hour)
	for i := 0; i < cap+5; i++ {
		s.SampleHistory()
	}
	samples, _ := s.History()
	if len(samples) != cap {
		t.Fatalf("retained %d samples, want ring capacity %d", len(samples), cap)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Time.Before(samples[i-1].Time) {
			t.Fatalf("samples out of order at %d", i)
		}
	}
}

func TestHTTPReplicationPrimary(t *testing.T) {
	srv, s := newTestServer(t)

	s.ObserveFollowerPoll("follower-a", 1, 100, 5, int64(250*time.Millisecond))
	s.ObserveFollowerPoll("follower-b", 1, 40, 2, 0)

	resp, out := get(t, srv.URL+"/replication")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replication status = %d", resp.StatusCode)
	}
	if out["role"] != "primary" {
		t.Fatalf("role = %v, want primary", out["role"])
	}
	followers := out["followers"].([]any)
	if len(followers) != 2 {
		t.Fatalf("followers = %v, want 2", followers)
	}
	a := followers[0].(map[string]any)
	if a["id"] != "follower-a" { // sorted by id
		t.Fatalf("followers not sorted: %v", followers)
	}
	if got := a["lagSeconds"].(float64); got != 0.25 {
		t.Fatalf("follower-a lagSeconds = %v, want 0.25", got)
	}
	if a["polls"].(float64) != 1 {
		t.Fatalf("follower-a polls = %v, want 1", a["polls"])
	}
}

func TestHTTPReplicationReplica(t *testing.T) {
	srv, s := newTestServer(t)
	s.SetReadOnly("http://primary:8080")
	s.SetReplicaProgress(3, 512, 9, 128, 2)
	s.SetReplicaVisibleLag(int64(5 * time.Millisecond))

	_, out := get(t, srv.URL+"/replication")
	if out["role"] != "replica" {
		t.Fatalf("role = %v, want replica", out["role"])
	}
	if out["primary"] != "http://primary:8080" {
		t.Fatalf("primary = %v", out["primary"])
	}
	if out["applyOffset"].(float64) != 512 || out["lagBytes"].(float64) != 128 {
		t.Fatalf("replica cursors wrong: %v", out)
	}
	if out["visibleLagMs"].(float64) != 5 {
		t.Fatalf("visibleLagMs = %v, want 5", out["visibleLagMs"])
	}
}

// TestFollowerRegistryCap pins the histogram-cardinality bound: follower
// ids beyond the cap share the "other" overflow series instead of
// minting unbounded metric labels.
func TestFollowerRegistryCap(t *testing.T) {
	s := New(NewDemoDB(1000), Config{Workers: 1})
	defer s.Close()
	for i := 0; i < maxTrackedFollowers+10; i++ {
		s.ObserveFollowerPoll("f-"+strconv.Itoa(i), 1, int64(i), 1, int64(time.Millisecond))
	}
	rep := s.Replication()
	if len(rep.Followers) != maxTrackedFollowers+1 {
		t.Fatalf("tracked %d followers, want cap %d + the overflow bucket",
			len(rep.Followers), maxTrackedFollowers)
	}
	var overflow bool
	for _, f := range rep.Followers {
		if f.ID == "other" {
			overflow = true
			if f.Polls < 9 {
				t.Fatalf("overflow bucket polls = %d, want the excess followers folded in", f.Polls)
			}
		}
	}
	if !overflow {
		t.Fatal("no overflow bucket in the report")
	}
}

func TestStatsQuantiles(t *testing.T) {
	srv, s := newTestServer(t)
	for i := 0; i < 5; i++ {
		if _, err := s.Query(DemoQuery(0.01)); err != nil {
			t.Fatal(err)
		}
	}
	_, out := get(t, srv.URL+"/stats")
	p50 := out["latencyP50Ms"].(float64)
	p95 := out["latencyP95Ms"].(float64)
	p99 := out["latencyP99Ms"].(float64)
	if p50 <= 0 {
		t.Fatalf("latencyP50Ms = %v, want > 0 after queries", p50)
	}
	if p95 < p50 || p99 < p95 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
}
