package service

import (
	"log/slog"
	"math"
	"strconv"
	"time"

	"repro/internal/workload"
	"repro/internal/workload/advisor"
)

// WorkloadReport is the GET /workload payload: the live capture snapshot
// — per-table column heat plus the top tracked plan shapes.
type WorkloadReport struct {
	Tables []workload.TableHeat `json:"tables"`
	// TopShapes are the tracked normalized plan shapes by descending
	// execution count (capped; ShapesTracked is the full ring size).
	TopShapes     []workload.ShapeInfo `json:"topShapes"`
	ShapesTracked int                  `json:"shapesTracked"`
	ShapesEvicted int64                `json:"shapesEvicted"`
}

// maxReportedShapes caps the shapes embedded in one /workload response;
// the full ring stays scrapeable through repeated queries but one JSON
// payload stays small.
const maxReportedShapes = 20

// WorkloadSnapshot returns the current capture state.
func (s *DB) WorkloadSnapshot() WorkloadReport {
	tables, shapes, evicted := s.capture.Snapshot()
	tracked := len(shapes)
	if len(shapes) > maxReportedShapes {
		shapes = shapes[:maxReportedShapes]
	}
	return WorkloadReport{
		Tables:        tables,
		TopShapes:     shapes,
		ShapesTracked: tracked,
		ShapesEvicted: evicted,
	}
}

// AdvisorReport is the GET /advisor payload. Advisory-only: the service
// never acts on it — POST /optimize (or a future background-relayout
// loop) is the acting path.
type AdvisorReport struct {
	Advice []advisor.TableAdvice `json:"advice"`
	// Queries is the number of captured executions behind the mix the
	// advice was computed from; Shapes is how many distinct plan shapes
	// they collapse to.
	Queries int64 `json:"queries"`
	Shapes  int   `json:"shapes"`
}

// Advise converts the captured shape frequencies into the optimizer's
// workload-declaration form and prices every touched table's current
// layout against the BPi optimum for the live mix, against a pinned
// snapshot. It also refreshes the per-table drift gauges and logs a
// warning for tables whose drift crosses the configured threshold.
func (s *DB) Advise() AdvisorReport {
	mix, execs := s.capture.Mix("captured")
	rep := AdvisorReport{Advice: []advisor.TableAdvice{}, Queries: execs, Shapes: len(mix.Queries)}
	if len(mix.Queries) == 0 {
		return rep
	}
	db := s.core()
	snap := db.Snapshot()
	rep.Advice = advisor.Advise(snap.Catalog(), db.Geometry(), mix)
	snap.Release()
	s.metrics.advisorRuns.Inc()
	warn := s.driftWarnRatio()
	for _, a := range rep.Advice {
		s.driftGauge(a.Table).Set(a.Drift)
		if warn > 0 && a.Drift >= warn {
			s.logger().Warn("layout drift",
				slog.String("table", a.Table),
				slog.Float64("drift", a.Drift),
				slog.String("layout", a.Layout),
				slog.String("recommended", a.Recommended),
				slog.Int64("queries", rep.Queries),
			)
			s.Event(EventDriftWarning, "layout drift over threshold", map[string]string{
				"table":       a.Table,
				"drift":       strconv.FormatFloat(a.Drift, 'f', 3, 64),
				"layout":      a.Layout,
				"recommended": a.Recommended,
			})
		}
	}
	return rep
}

// DefaultDriftWarnRatio is the drift threshold above which Advise logs a
// warning when no explicit threshold was set: a table paying 25% over
// the modeled optimum is worth an operator's attention.
const DefaultDriftWarnRatio = 1.25

// SetDriftWarnRatio sets the drift ratio at or above which Advise logs a
// per-table warning (<= 0 disables the warnings).
func (s *DB) SetDriftWarnRatio(r float64) {
	s.advisorWarn.Store(math.Float64bits(r))
}

func (s *DB) driftWarnRatio() float64 {
	if bits := s.advisorWarn.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return DefaultDriftWarnRatio
}

// StartAdvisor runs Advise every interval until StopAdvisor (or Close).
// At most one loop runs; a second call replaces the first. Intervals
// <= 0 are a no-op — the endpoint and gauges then only refresh when
// GET /advisor is hit.
func (s *DB) StartAdvisor(interval time.Duration) {
	if interval <= 0 {
		return
	}
	s.advisorStopMu.Lock()
	defer s.advisorStopMu.Unlock()
	if s.advisorStop != nil {
		close(s.advisorStop)
	}
	stop := make(chan struct{})
	s.advisorStop = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Advise()
			case <-stop:
				return
			}
		}
	}()
}

// StopAdvisor stops the periodic advisor loop, if one is running.
func (s *DB) StopAdvisor() {
	s.advisorStopMu.Lock()
	defer s.advisorStopMu.Unlock()
	if s.advisorStop != nil {
		close(s.advisorStop)
		s.advisorStop = nil
	}
}

// Capture exposes the workload-capture sink (tests and experiments).
func (s *DB) Capture() *workload.Capture { return s.capture }
