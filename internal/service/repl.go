package service

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/persist"
)

// Replication support. The service is role-agnostic: a primary is a
// normal read/write service whose WAL the repl package ships, a replica
// is the same service flipped read-only whose catalog is mutated solely
// through ApplyReplicated — the exact record-replay path recovery uses,
// applied copy-on-write and published as one MVCC version per chunk, so
// a replica serves /query, /prepare and /exec exactly like a primary
// (reads lock-free on pinned snapshots) while staying bit-identical to
// it at equal WAL offsets.
//
// Failover makes the role dynamic. Primaries are ordered by a fencing
// term: promotion flips a replica writable at term+1, and any primary
// that observes a higher term than its own — via the X-Repl-Term token
// on /repl/* requests, or an explicit demote — fences itself: writes are
// rejected with ErrFenced instead of forking the history (split-brain).
// All role transitions go through the methods below under roleMu.

// Replica tail-loop states, published by repl.Replica through
// SetReplicaState and surfaced in /stats and /healthz.
const (
	// ReplStateBootstrapping: fetching the initial snapshot.
	ReplStateBootstrapping = "bootstrapping"
	// ReplStateStreaming: tailing the primary's WAL normally.
	ReplStateStreaming = "streaming"
	// ReplStateDegraded: consecutive failures talking to the primary;
	// reads still serve, retries back off.
	ReplStateDegraded = "degraded"
	// ReplStateResyncing: re-fetching the snapshot after an epoch
	// rotation (410) or a persistently unusable tail.
	ReplStateResyncing = "resyncing"
	// ReplStatePromoteEligible: the primary has been unreachable past
	// the promotion threshold — an operator (or external coordinator)
	// may POST /promote.
	ReplStatePromoteEligible = "promote-eligible"
)

// SetReadOnly flips the service into replica mode: local writes
// (inserts, bulk loads, re-layouts, checkpoints) are rejected with
// ErrReadOnly naming the primary. Called before serving starts, and by
// demotion at runtime.
func (s *DB) SetReadOnly(primaryURL string) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	s.role.readOnly = true
	s.role.primaryURL = primaryURL
}

// ReadOnly reports whether the service is a read-only replica.
func (s *DB) ReadOnly() bool {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.readOnly
}

// PrimaryURL returns the primary this replica follows ("" on a primary).
func (s *DB) PrimaryURL() string {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.primaryURL
}

// Term returns the node's current fencing term.
func (s *DB) Term() uint64 {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.term
}

// AdoptTerm raises the node's term to t if higher — the normal
// propagation path: replicas adopt the term their primary reports.
func (s *DB) AdoptTerm(t uint64) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	if t > s.role.term {
		s.role.term = t
	}
}

// Promote flips the node into primary mode at the given term: writes are
// accepted, fencing state is cleared. The repl.Node drives this after
// stopping the tail loop and draining what the old primary could still
// serve.
func (s *DB) Promote(term uint64) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	s.role = roleState{term: term}
	s.metrics.promotions.Inc()
}

// Fence freezes a superseded primary: term rises to at least term, and
// every write from now on fails with ErrFenced naming the superseding
// primary (when known). Reads keep serving. Fencing a replica is
// harmless — it is already read-only — and the flag clears on its next
// successful bootstrap.
func (s *DB) Fence(term uint64, by string) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	if term > s.role.term {
		s.role.term = term
	}
	if !s.role.fenced {
		s.metrics.fences.Inc()
	}
	s.role.fenced = true
	if by != "" {
		s.role.fencedBy = by
	}
}

// Fenced reports whether the node has been fenced, and by whom.
func (s *DB) Fenced() (bool, string) {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.fenced, s.role.fencedBy
}

// ClearFence drops the fenced flag — called when a demoted node finishes
// bootstrapping from the new primary and is a consistent replica again.
func (s *DB) ClearFence() {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	s.role.fenced = false
	s.role.fencedBy = ""
}

// writeGuard rejects local mutations on nodes that must not accept them:
// fenced (superseded) primaries and read-only replicas.
func (s *DB) writeGuard() error {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	if s.role.fenced {
		if s.role.fencedBy != "" {
			return fmt.Errorf("%w: superseded by primary %s at term %d",
				ErrFenced, s.role.fencedBy, s.role.term)
		}
		return fmt.Errorf("%w: superseded at term %d", ErrFenced, s.role.term)
	}
	if s.role.readOnly {
		return fmt.Errorf("%w: writes go to the primary at %s", ErrReadOnly, s.role.primaryURL)
	}
	return nil
}

// SwapCore replaces the wrapped database wholesale — the replica
// bootstrap path, installing the catalog restored from the primary's
// snapshot. It serializes with writers on the commit mutex, re-installs
// the shared pool on the new core and drops every cached plan. Queries
// running against the old core finish on their pinned snapshots — the
// old core stays alive through those pins, and the plan-cache key's
// core id keeps its epochs from colliding with the new core's.
func (s *DB) SwapCore(db *core.DB) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	db.SetParOptions(s.opt)
	s.dbPtr.Store(db)
	s.invalidate()
}

// ApplyReplicated applies a chunk of CRC-framed WAL records shipped from
// the primary. The whole chunk builds one copy-on-write version under
// the commit mutex and publishes with a single atomic swap, so however
// large the chunk, concurrent replica queries run lock-free on the prior
// version and never observe a half-applied chunk. It consumes whole
// frames only and returns how many bytes and mutation records were
// applied: a partial trailing frame (a torn stream) is left for the
// caller to re-request from offset+consumed. A CRC failure or an epoch
// marker that does not match epoch stops the apply with an error; the
// already-applied prefix still publishes and is reported.
func (s *DB) ApplyReplicated(chunk []byte, epoch uint64) (consumed, applied int, err error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	tx := s.core().BeginWrite()
	for consumed < len(chunk) {
		body, n, ferr := persist.ParseFrame(chunk[consumed:])
		if ferr != nil {
			err = ferr
			break
		}
		if n == 0 {
			break // torn tail: no complete frame in the remainder
		}
		if e, isEpoch := persist.EpochRecord(body); isEpoch {
			if e != epoch {
				err = fmt.Errorf("service: shipped WAL carries epoch %d, following %d", e, epoch)
				break
			}
		} else if aerr := persist.ApplyRecordTo(tx, body); aerr != nil {
			err = aerr
			break
		} else {
			applied++
		}
		consumed += n
	}
	if applied > 0 {
		tx.Commit()
		s.invalidate()
	}
	return consumed, applied, err
}

// FollowerDelta adjusts the primary's connected-follower gauge (+1 when
// a WAL tail stream attaches, -1 when it detaches).
func (s *DB) FollowerDelta(d int64) { s.repl.followers.Add(d) }

// SetReplicaProgress publishes the replica's apply position and lag for
// /stats.
func (s *DB) SetReplicaProgress(epoch uint64, offset, records, lagBytes, lagRecords int64) {
	s.repl.epoch.Store(epoch)
	s.repl.offset.Store(offset)
	s.repl.records.Store(records)
	s.repl.lagBytes.Store(max(lagBytes, 0))
	s.repl.lagRecords.Store(max(lagRecords, 0))
}

// NoteReplicaSync counts a snapshot bootstrap (the first sync and every
// epoch-rotation resync).
func (s *DB) NoteReplicaSync() { s.repl.syncs.Add(1) }

// NoteReplicaRetry counts a failed bootstrap or tail attempt that the
// replica will retry with backoff.
func (s *DB) NoteReplicaRetry() { s.repl.retries.Add(1) }

// SetReplicaState publishes the tail loop's state-machine position (one
// of the ReplState constants) for /stats and /healthz.
func (s *DB) SetReplicaState(state string) { s.repl.state.Store(state) }
