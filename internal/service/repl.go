package service

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/persist"
)

// Replication support. The service is role-agnostic: a primary is a
// normal read/write service whose WAL the repl package ships, a replica
// is the same service flipped read-only whose catalog is mutated solely
// through ApplyReplicated — the exact record-replay path recovery uses,
// applied copy-on-write and published as one MVCC version per chunk, so
// a replica serves /query, /prepare and /exec exactly like a primary
// (reads lock-free on pinned snapshots) while staying bit-identical to
// it at equal WAL offsets.
//
// Failover makes the role dynamic. Primaries are ordered by a fencing
// term: promotion flips a replica writable at term+1, and any primary
// that observes a higher term than its own — via the X-Repl-Term token
// on /repl/* requests, or an explicit demote — fences itself: writes are
// rejected with ErrFenced instead of forking the history (split-brain).
// All role transitions go through the methods below under roleMu.

// Replica tail-loop states, published by repl.Replica through
// SetReplicaState and surfaced in /stats and /healthz.
const (
	// ReplStateBootstrapping: fetching the initial snapshot.
	ReplStateBootstrapping = "bootstrapping"
	// ReplStateStreaming: tailing the primary's WAL normally.
	ReplStateStreaming = "streaming"
	// ReplStateDegraded: consecutive failures talking to the primary;
	// reads still serve, retries back off.
	ReplStateDegraded = "degraded"
	// ReplStateResyncing: re-fetching the snapshot after an epoch
	// rotation (410) or a persistently unusable tail.
	ReplStateResyncing = "resyncing"
	// ReplStatePromoteEligible: the primary has been unreachable past
	// the promotion threshold — an operator (or external coordinator)
	// may POST /promote.
	ReplStatePromoteEligible = "promote-eligible"
)

// SetReadOnly flips the service into replica mode: local writes
// (inserts, bulk loads, re-layouts, checkpoints) are rejected with
// ErrReadOnly naming the primary. Called before serving starts, and by
// demotion at runtime.
func (s *DB) SetReadOnly(primaryURL string) {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	s.role.readOnly = true
	s.role.primaryURL = primaryURL
}

// ReadOnly reports whether the service is a read-only replica.
func (s *DB) ReadOnly() bool {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.readOnly
}

// PrimaryURL returns the primary this replica follows ("" on a primary).
func (s *DB) PrimaryURL() string {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.primaryURL
}

// Term returns the node's current fencing term.
func (s *DB) Term() uint64 {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.term
}

// AdoptTerm raises the node's term to t if higher — the normal
// propagation path: replicas adopt the term their primary reports. A
// raise is journaled (events fire after roleMu is released: the journal
// stamp re-reads the term through it).
func (s *DB) AdoptTerm(t uint64) {
	s.roleMu.Lock()
	raised := t > s.role.term
	if raised {
		s.role.term = t
	}
	s.roleMu.Unlock()
	if raised {
		s.Event(EventTermAdopt, "adopted higher term from primary",
			map[string]string{"term": strconv.FormatUint(t, 10)})
	}
}

// Promote flips the node into primary mode at the given term: writes are
// accepted, fencing state is cleared. The repl.Node drives this after
// stopping the tail loop and draining what the old primary could still
// serve.
func (s *DB) Promote(term uint64) {
	s.roleMu.Lock()
	s.role = roleState{term: term}
	s.roleMu.Unlock()
	s.metrics.promotions.Inc()
	s.Event(EventPromote, "promoted to primary",
		map[string]string{"term": strconv.FormatUint(term, 10)})
}

// Fence freezes a superseded primary: term rises to at least term, and
// every write from now on fails with ErrFenced naming the superseding
// primary (when known). Reads keep serving. Fencing a replica is
// harmless — it is already read-only — and the flag clears on its next
// successful bootstrap.
func (s *DB) Fence(term uint64, by string) {
	s.roleMu.Lock()
	if term > s.role.term {
		s.role.term = term
	}
	newly := !s.role.fenced
	s.role.fenced = true
	if by != "" {
		s.role.fencedBy = by
	}
	s.roleMu.Unlock()
	if newly {
		s.metrics.fences.Inc()
		s.Event(EventFence, "fenced: superseded by a higher term", map[string]string{
			"term": strconv.FormatUint(term, 10),
			"by":   by,
		})
	}
}

// Fenced reports whether the node has been fenced, and by whom.
func (s *DB) Fenced() (bool, string) {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	return s.role.fenced, s.role.fencedBy
}

// ClearFence drops the fenced flag — called when a demoted node finishes
// bootstrapping from the new primary and is a consistent replica again.
func (s *DB) ClearFence() {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	s.role.fenced = false
	s.role.fencedBy = ""
}

// writeGuard rejects local mutations on nodes that must not accept them:
// fenced (superseded) primaries and read-only replicas.
func (s *DB) writeGuard() error {
	s.roleMu.RLock()
	defer s.roleMu.RUnlock()
	if s.role.fenced {
		if s.role.fencedBy != "" {
			return fmt.Errorf("%w: superseded by primary %s at term %d",
				ErrFenced, s.role.fencedBy, s.role.term)
		}
		return fmt.Errorf("%w: superseded at term %d", ErrFenced, s.role.term)
	}
	if s.role.readOnly {
		return fmt.Errorf("%w: writes go to the primary at %s", ErrReadOnly, s.role.primaryURL)
	}
	return nil
}

// SwapCore replaces the wrapped database wholesale — the replica
// bootstrap path, installing the catalog restored from the primary's
// snapshot. It serializes with writers on the commit mutex, re-installs
// the shared pool on the new core and drops every cached plan. Queries
// running against the old core finish on their pinned snapshots — the
// old core stays alive through those pins, and the plan-cache key's
// core id keeps its epochs from colliding with the new core's.
func (s *DB) SwapCore(db *core.DB) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	db.SetParOptions(s.opt)
	s.dbPtr.Store(db)
	s.invalidate()
}

// ApplyReplicated applies a chunk of CRC-framed WAL records shipped from
// the primary. The whole chunk builds one copy-on-write version under
// the commit mutex and publishes with a single atomic swap, so however
// large the chunk, concurrent replica queries run lock-free on the prior
// version and never observe a half-applied chunk. It consumes whole
// frames only and returns how many bytes and mutation records were
// applied: a partial trailing frame (a torn stream) is left for the
// caller to re-request from offset+consumed. A CRC failure or an epoch
// marker that does not match epoch stops the apply with an error; the
// already-applied prefix still publishes and is reported.
func (s *DB) ApplyReplicated(chunk []byte, epoch uint64) (consumed, applied int, err error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	tx := s.core().BeginWrite()
	for consumed < len(chunk) {
		body, n, ferr := persist.ParseFrame(chunk[consumed:])
		if ferr != nil {
			err = ferr
			break
		}
		if n == 0 {
			break // torn tail: no complete frame in the remainder
		}
		if e, isEpoch := persist.EpochRecord(body); isEpoch {
			if e != epoch {
				err = fmt.Errorf("service: shipped WAL carries epoch %d, following %d", e, epoch)
				break
			}
		} else if aerr := persist.ApplyRecordTo(tx, body); aerr != nil {
			err = aerr
			break
		} else {
			applied++
		}
		consumed += n
	}
	if applied > 0 {
		tx.Commit()
		s.invalidate()
	}
	return consumed, applied, err
}

// FollowerDelta adjusts the primary's connected-follower gauge (+1 when
// a WAL tail stream attaches, -1 when it detaches).
func (s *DB) FollowerDelta(d int64) { s.repl.followers.Add(d) }

// followerInfo is the primary's view of one follower, fed by the
// X-Repl-* ack headers its tail polls carry. All fields under followMu.
type followerInfo struct {
	id         string
	epoch      uint64
	offset     int64
	records    int64
	lagSeconds float64 // last reported commit-to-visible lag (0 = unknown)
	resyncs    int64
	polls      int64
	lastSeen   time.Time
	hist       *obs.Histogram // db_repl_visible_lag_seconds{follower=id}
}

// maxTrackedFollowers bounds the registry (and the per-follower metric
// cardinality); ids past the cap lump into follower="other".
const maxTrackedFollowers = 64

// followerLocked returns the registry entry for id, creating it (and its
// lag histogram) on first sight. Caller holds followMu.
func (s *DB) followerLocked(id string) *followerInfo {
	if f, ok := s.followMap[id]; ok {
		return f
	}
	if len(s.followMap) >= maxTrackedFollowers {
		id = "other"
		if f, ok := s.followMap[id]; ok {
			return f
		}
	}
	f := &followerInfo{
		id: id,
		hist: s.metrics.reg.Histogram("db_repl_visible_lag_seconds",
			"Primary: per-follower commit-to-visible lag (primary WAL commit to replica apply-publish), as reported on tail polls.",
			nil, obs.Labels{"follower": id}),
	}
	s.followMap[id] = f
	return f
}

// ObserveFollowerPoll records one follower tail poll: its acked apply
// position and — when the follower could measure it — the
// commit-to-visible lag of its latest applied chunk, fed into the
// per-follower histogram.
func (s *DB) ObserveFollowerPoll(id string, epoch uint64, offset, records, visibleLagNanos int64) {
	if id == "" {
		return
	}
	s.followMu.Lock()
	f := s.followerLocked(id)
	f.epoch, f.offset, f.records = epoch, offset, records
	f.polls++
	f.lastSeen = time.Now()
	hist := f.hist
	if visibleLagNanos > 0 {
		f.lagSeconds = float64(visibleLagNanos) / 1e9
	}
	s.followMu.Unlock()
	if visibleLagNanos > 0 {
		hist.Observe(float64(visibleLagNanos) / 1e9)
	}
}

// NoteFollowerSync counts a snapshot fetch by a follower — its initial
// bootstrap and every epoch-rotation resync.
func (s *DB) NoteFollowerSync(id string) {
	if id == "" {
		return
	}
	s.followMu.Lock()
	f := s.followerLocked(id)
	f.resyncs++
	f.lastSeen = time.Now()
	s.followMu.Unlock()
}

// FollowerStatus is one follower's replication progress as the primary
// sees it (GET /replication).
type FollowerStatus struct {
	ID    string `json:"id"`
	Epoch uint64 `json:"epoch"`
	// Offset/Records: the follower's acked apply position. Lag fields
	// are computed against the primary's current committed position;
	// bytes/records are -1 when the follower is on another epoch (its
	// offsets don't compare until it resyncs).
	Offset     int64   `json:"offset"`
	Records    int64   `json:"records"`
	LagBytes   int64   `json:"lagBytes"`
	LagRecords int64   `json:"lagRecords"`
	LagSeconds float64 `json:"lagSeconds"` // last reported commit-to-visible lag (0 = unknown)
	Resyncs    int64   `json:"resyncs"`
	Polls      int64   `json:"polls"`
	LastSeenMs int64   `json:"lastSeenMs"` // ms since the follower's last poll/sync
}

// ReplicationReport is the GET /replication payload: the node's role and
// fencing state, the primary-side commit position and per-follower
// progress, and (on a replica) its own apply position and lag.
type ReplicationReport struct {
	Role   string `json:"role"`
	Term   uint64 `json:"term"`
	Fenced bool   `json:"fenced"`

	// Primary view: the WAL epoch, committed prefix, and last stamped
	// commit (sequence, wall-clock time, correlation id).
	WALEpoch        uint64 `json:"walEpoch,omitempty"`
	Committed       int64  `json:"committed,omitempty"`
	Records         int64  `json:"records,omitempty"`
	LastCommitSeq   int64  `json:"lastCommitSeq,omitempty"`
	LastCommitNanos int64  `json:"lastCommitNanos,omitempty"`
	LastCommitID    string `json:"lastCommitId,omitempty"`

	Followers []FollowerStatus `json:"followers"`

	// Replica view.
	Primary      string  `json:"primary,omitempty"`
	State        string  `json:"state,omitempty"`
	ApplyEpoch   uint64  `json:"applyEpoch,omitempty"`
	ApplyOffset  int64   `json:"applyOffset,omitempty"`
	ApplyRecords int64   `json:"applyRecords,omitempty"`
	LagBytes     int64   `json:"lagBytes,omitempty"`
	LagRecords   int64   `json:"lagRecords,omitempty"`
	VisibleLagMs float64 `json:"visibleLagMs,omitempty"`
	Syncs        int64   `json:"syncs,omitempty"`
	Retries      int64   `json:"retries,omitempty"`
}

// Replication builds the GET /replication report.
func (s *DB) Replication() ReplicationReport {
	s.roleMu.RLock()
	role := s.role
	s.roleMu.RUnlock()
	rep := ReplicationReport{
		Role:      "primary",
		Term:      role.term,
		Fenced:    role.fenced,
		Followers: []FollowerStatus{},
	}
	var committed, records int64
	if m := s.mgr(); m != nil {
		rep.WALEpoch = m.Epoch()
		committed, records = m.Committed()
		rep.Committed, rep.Records = committed, records
		rep.LastCommitSeq, rep.LastCommitNanos, rep.LastCommitID = m.LastCommit()
	}
	s.followMu.Lock()
	now := time.Now()
	for _, f := range s.followMap {
		fs := FollowerStatus{
			ID: f.id, Epoch: f.epoch, Offset: f.offset, Records: f.records,
			LagBytes: -1, LagRecords: -1,
			LagSeconds: f.lagSeconds, Resyncs: f.resyncs, Polls: f.polls,
			LastSeenMs: now.Sub(f.lastSeen).Milliseconds(),
		}
		if f.epoch == rep.WALEpoch {
			fs.LagBytes = max(committed-f.offset, 0)
			fs.LagRecords = max(records-f.records, 0)
		}
		rep.Followers = append(rep.Followers, fs)
	}
	s.followMu.Unlock()
	sort.Slice(rep.Followers, func(i, j int) bool { return rep.Followers[i].ID < rep.Followers[j].ID })
	if role.readOnly {
		rep.Role = "replica"
		rep.Primary = role.primaryURL
		rep.ApplyEpoch = s.repl.epoch.Load()
		rep.ApplyOffset = s.repl.offset.Load()
		rep.ApplyRecords = s.repl.records.Load()
		rep.LagBytes = s.repl.lagBytes.Load()
		rep.LagRecords = s.repl.lagRecords.Load()
		rep.VisibleLagMs = float64(s.repl.visibleLagNanos.Load()) / 1e6
		rep.Syncs = s.repl.syncs.Load()
		rep.Retries = s.repl.retries.Load()
		if state, ok := s.repl.state.Load().(string); ok {
			rep.State = state
		}
	}
	return rep
}

// SetReplicaProgress publishes the replica's apply position and lag for
// /stats.
func (s *DB) SetReplicaProgress(epoch uint64, offset, records, lagBytes, lagRecords int64) {
	s.repl.epoch.Store(epoch)
	s.repl.offset.Store(offset)
	s.repl.records.Store(records)
	s.repl.lagBytes.Store(max(lagBytes, 0))
	s.repl.lagRecords.Store(max(lagRecords, 0))
}

// SetReplicaVisibleLag publishes the replica's latest commit-to-visible
// lag measurement (primary commit wall-clock to local apply-publish).
func (s *DB) SetReplicaVisibleLag(nanos int64) {
	s.repl.visibleLagNanos.Store(max(nanos, 0))
}

// NoteReplicaSync counts a snapshot bootstrap (the first sync and every
// epoch-rotation resync) and journals it.
func (s *DB) NoteReplicaSync() {
	n := s.repl.syncs.Add(1)
	s.Event(EventResync, "bootstrapped from primary snapshot",
		map[string]string{"syncs": strconv.FormatInt(n, 10)})
}

// NoteReplicaRetry counts a failed bootstrap or tail attempt that the
// replica will retry with backoff.
func (s *DB) NoteReplicaRetry() { s.repl.retries.Add(1) }

// SetReplicaState publishes the tail loop's state-machine position (one
// of the ReplState constants) for /stats and /healthz.
func (s *DB) SetReplicaState(state string) { s.repl.state.Store(state) }
