package service

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/persist"
)

// Replication support. The service is role-agnostic: a primary is a
// normal read/write service whose WAL the repl package ships, a replica
// is the same service flipped read-only whose catalog is mutated solely
// through ApplyReplicated — the exact replay path recovery uses, under
// the same write lock queries contend on, so a replica serves /query,
// /prepare and /exec exactly like a primary while staying bit-identical
// to it at equal WAL offsets.

// SetReadOnly flips the service into replica mode before serving starts:
// local writes (inserts, bulk loads, re-layouts, checkpoints) are
// rejected with ErrReadOnly naming the primary.
func (s *DB) SetReadOnly(primaryURL string) {
	s.readOnly = true
	s.primaryURL = primaryURL
}

// ReadOnly reports whether the service is a read-only replica.
func (s *DB) ReadOnly() bool { return s.readOnly }

// PrimaryURL returns the primary this replica follows ("" on a primary).
func (s *DB) PrimaryURL() string { return s.primaryURL }

func (s *DB) errReadOnly() error {
	return fmt.Errorf("%w: writes go to the primary at %s", ErrReadOnly, s.primaryURL)
}

// SwapCore replaces the wrapped database wholesale — the replica
// bootstrap path, installing the catalog restored from the primary's
// snapshot. It takes the write lock, re-installs the shared pool on the
// new core and drops every cached plan (compiled forms address the old
// partitions).
func (s *DB) SwapCore(db *core.DB) {
	s.catalogMu.Lock()
	defer s.catalogMu.Unlock()
	db.SetParOptions(s.opt)
	s.db = db
	s.invalidate()
}

// ApplyReplicated applies a chunk of CRC-framed WAL records shipped from
// the primary, under the catalog write lock (concurrent queries share
// the read lock exactly as during a local insert). It consumes whole
// frames only and returns how many bytes and mutation records were
// applied: a partial trailing frame (a torn stream) is left for the
// caller to re-request from offset+consumed. A CRC failure or an epoch
// marker that does not match epoch stops the apply with an error; the
// already-applied prefix is still reported.
func (s *DB) ApplyReplicated(chunk []byte, epoch uint64) (consumed, applied int, err error) {
	s.catalogMu.Lock()
	defer s.catalogMu.Unlock()
	for consumed < len(chunk) {
		body, n, ferr := persist.ParseFrame(chunk[consumed:])
		if ferr != nil {
			err = ferr
			break
		}
		if n == 0 {
			break // torn tail: no complete frame in the remainder
		}
		if e, isEpoch := persist.EpochRecord(body); isEpoch {
			if e != epoch {
				err = fmt.Errorf("service: shipped WAL carries epoch %d, following %d", e, epoch)
				break
			}
		} else if aerr := persist.ApplyRecord(s.db, body); aerr != nil {
			err = aerr
			break
		} else {
			applied++
		}
		consumed += n
	}
	if applied > 0 {
		s.invalidate()
	}
	return consumed, applied, err
}

// FollowerDelta adjusts the primary's connected-follower gauge (+1 when
// a WAL tail stream attaches, -1 when it detaches).
func (s *DB) FollowerDelta(d int64) { s.repl.followers.Add(d) }

// SetReplicaProgress publishes the replica's apply position and lag for
// /stats.
func (s *DB) SetReplicaProgress(epoch uint64, offset, records, lagBytes, lagRecords int64) {
	s.repl.epoch.Store(epoch)
	s.repl.offset.Store(offset)
	s.repl.records.Store(records)
	s.repl.lagBytes.Store(max(lagBytes, 0))
	s.repl.lagRecords.Store(max(lagRecords, 0))
}

// NoteReplicaSync counts a snapshot bootstrap (the first sync and every
// epoch-rotation resync).
func (s *DB) NoteReplicaSync() { s.repl.syncs.Add(1) }
