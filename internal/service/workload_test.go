package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/layout"
	"repro/internal/plan"
	"repro/internal/workload"
)

// demoColReads indexes a table snapshot's column reads by attribute name.
func demoColReads(t *testing.T, th workload.TableHeat) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for _, c := range th.Cols {
		out[c.Name] = c.Reads
	}
	return out
}

func TestCaptureCountsThroughService(t *testing.T) {
	const rows = 2000
	s := New(NewDemoDB(rows), Config{Workers: 1})
	defer s.Close()
	q := DemoQuery(0.01)
	for i := 0; i < 3; i++ {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.WorkloadSnapshot()
	if len(rep.Tables) != 1 || rep.Tables[0].Table != "R" {
		t.Fatalf("snapshot tables = %+v", rep.Tables)
	}
	th := rep.Tables[0]
	if th.Queries != 3 {
		t.Errorf("Queries = %d, want 3", th.Queries)
	}
	if th.RowsScanned != 3*rows {
		t.Errorf("RowsScanned = %d, want %d", th.RowsScanned, 3*rows)
	}
	reads := demoColReads(t, th)
	// The demo query reads A (filter) and B..E (projected); F.. stay cold.
	for _, hot := range []string{"A", "B", "C", "D", "E"} {
		if reads[hot] != 3 {
			t.Errorf("column %s reads = %d, want 3", hot, reads[hot])
		}
	}
	for _, cold := range []string{"F", "G", "P"} {
		if reads[cold] != 0 {
			t.Errorf("cold column %s reads = %d, want 0", cold, reads[cold])
		}
	}
	if len(rep.TopShapes) != 1 || rep.TopShapes[0].Count != 3 {
		t.Errorf("shapes = %+v", rep.TopShapes)
	}

	// The uncached vector path records too (its footprint resolves per
	// request) and collapses onto the same normalized shape.
	if _, _, err := s.QueryEx(q, QueryOpts{Engine: "vector"}); err != nil {
		t.Fatal(err)
	}
	rep = s.WorkloadSnapshot()
	if got := rep.Tables[0].Queries; got != 4 {
		t.Errorf("after vector exec Queries = %d, want 4", got)
	}
	if len(rep.TopShapes) != 1 || rep.TopShapes[0].Count != 4 {
		t.Errorf("vector exec did not share the jit shape: %+v", rep.TopShapes)
	}
}

// TestConstantSweepCollapsesShapes asserts the capture side of parameter
// sweeps: distinct constants compile distinct cache entries but one
// normalized shape, so the ring counts the sweep as one hot query.
func TestConstantSweepCollapsesShapes(t *testing.T) {
	s := New(NewDemoDB(500), Config{Workers: 1})
	defer s.Close()
	for i := 1; i <= 5; i++ {
		if _, err := s.Query(DemoQuery(float64(i) / 100)); err != nil {
			t.Fatal(err)
		}
	}
	rep := s.WorkloadSnapshot()
	if rep.ShapesTracked != 1 {
		t.Errorf("shapes tracked = %d, want 1 (constants normalize together)", rep.ShapesTracked)
	}
	if rep.TopShapes[0].Count != 5 {
		t.Errorf("top shape count = %d, want 5", rep.TopShapes[0].Count)
	}
	if st := s.Stats(); st.PlanCacheSize != 5 || st.PlanCacheShapes != 1 {
		t.Errorf("cache entries/shapes = %d/%d, want 5/1", st.PlanCacheSize, st.PlanCacheShapes)
	}
}

// TestAdvisorMatchesOfflineOptimizer is the acceptance-criteria pin: the
// advice computed from the live captured mix must recommend the same
// layout, at the same BPi cost, as an offline optimizer run over the
// equivalent declared workload.
func TestAdvisorMatchesOfflineOptimizer(t *testing.T) {
	const rows = 2000
	s := New(NewDemoDB(rows), Config{Workers: 1})
	defer s.Close()

	// A skewed mix of two structurally distinct queries: the narrow demo
	// aggregate (hot) and a wide two-column scan (cool).
	hot, cool := DemoQuery(0.01), plan.Scan{Table: "R", Cols: []int{8, 9}}
	for i := 0; i < 7; i++ {
		if _, err := s.Query(hot); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Query(cool); err != nil {
			t.Fatal(err)
		}
	}

	rep := s.Advise()
	if rep.Queries != 9 || rep.Shapes != 2 {
		t.Fatalf("advisor saw %d queries over %d shapes, want 9 over 2", rep.Queries, rep.Shapes)
	}
	if len(rep.Advice) != 1 {
		t.Fatalf("advice = %+v, want exactly table R", rep.Advice)
	}
	a := rep.Advice[0]
	if a.Drift <= 1 {
		t.Errorf("skewed mix over the NSM demo table should drift > 1, got %v", a.Drift)
	}

	// Offline: declare the equivalent workload (same plans, same observed
	// frequencies, capture order) and run the optimizer directly.
	db := s.Unwrap()
	declared := (&workload.Workload{Name: "declared"}).Add("hot", hot, 7).Add("cool", cool, 2)
	est := costmodel.NewEstimator(db.Catalog(), db.Geometry())
	current, optimal, best := layout.NewOptimizer(est).Drift("R", declared)
	if a.Recommended != best.String() {
		t.Errorf("live advice recommends %s, offline optimizer picks %s", a.Recommended, best)
	}
	if a.OptimalCost != optimal || a.CurrentCost != current {
		t.Errorf("live costs (%v, %v) != offline costs (%v, %v)",
			a.CurrentCost, a.OptimalCost, current, optimal)
	}

	// Determinism across advisor runs on an unchanged mix.
	if again := s.Advise(); again.Advice[0] != a {
		t.Errorf("advice changed without new traffic: %+v vs %+v", a, again.Advice[0])
	}
}

func TestWorkloadAndAdvisorHTTP(t *testing.T) {
	s := New(NewDemoDB(1000), Config{Workers: 1})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Query(DemoQuery(0.05)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wl WorkloadReport
	getJSON(t, srv.URL+"/workload", &wl)
	if len(wl.Tables) != 1 || wl.Tables[0].Queries != 4 {
		t.Errorf("/workload tables = %+v", wl.Tables)
	}
	if reads := demoColReads(t, wl.Tables[0]); reads["A"] != 4 || reads["B"] != 4 {
		t.Errorf("/workload col reads = %v", reads)
	}
	if wl.ShapesTracked != 1 || len(wl.TopShapes) != 1 || wl.TopShapes[0].Count != 4 {
		t.Errorf("/workload shapes = %+v (tracked %d)", wl.TopShapes, wl.ShapesTracked)
	}
	if len(wl.TopShapes[0].Plan) == 0 {
		t.Error("/workload shape has no normalized plan payload")
	}

	var adv struct {
		Advice []struct {
			Table       string  `json:"table"`
			Layout      string  `json:"layout"`
			Recommended string  `json:"recommended"`
			Drift       float64 `json:"drift"`
		} `json:"advice"`
		Queries int64 `json:"queries"`
		Shapes  int   `json:"shapes"`
		Micros  int64 `json:"micros"`
	}
	getJSON(t, srv.URL+"/advisor", &adv)
	if adv.Queries != 4 || adv.Shapes != 1 || len(adv.Advice) != 1 {
		t.Fatalf("/advisor = %+v", adv)
	}
	if adv.Advice[0].Table != "R" || adv.Advice[0].Drift < 1 {
		t.Errorf("/advisor advice = %+v", adv.Advice[0])
	}

	// Metrics: column heat, drift gauge (set by the /advisor run above),
	// shape gauges, build info and uptime must all expose.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`db_column_reads_total{column="A",table="R"} 4`,
		`db_table_queries_total{table="R"} 4`,
		`db_table_rows_scanned_total{table="R"} 4000`,
		`db_layout_drift_ratio{table="R"}`,
		`db_layout_advisor_runs_total 1`,
		`db_plan_cache_shapes 1`,
		`db_plan_cache_top_shape_entries 1`,
		`served_build_info{goversion="go`,
		`served_uptime_seconds`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Advisory-only: the advisor run must not have touched the layout.
	if got := s.Tables()[0].Layout; got != "row" {
		t.Errorf("advisor changed the layout to %s — it must be advisory-only", got)
	}
	if st := s.Stats(); st.Relayouts != 0 {
		t.Errorf("advisor triggered %d relayouts — it must be advisory-only", st.Relayouts)
	}
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}
