package service

import (
	"sync"
	"testing"

	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// TestServiceConcurrentQueryVsRelayout is the serving-layer torture test:
// many goroutines hammer Query on one shared pool while another loop runs
// OptimizeLayouts (write lock, cache invalidation, relation swaps) and a
// third fires Inserts into a side table. Run under -race in CI. Every
// result must stay row-identical to serial direct execution — layout
// changes and scheduling interleavings are never allowed to show up in
// answers.
func TestServiceConcurrentQueryVsRelayout(t *testing.T) {
	const rows = 20_000
	queries := []plan.Node{
		DemoQuery(0.001),
		DemoQuery(0.1),
		DemoQuery(0.9),
		plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 1, Op: expr.Lt, Val: storage.EncodeInt(50)},
			Cols:   []int{0, 1, 8},
		},
		plan.Aggregate{
			Child:   plan.Scan{Table: "R", Cols: []int{1, 2}},
			GroupBy: []int{0},
			Aggs: []expr.AggSpec{
				{Kind: expr.Count, Name: "n"},
				{Kind: expr.Max, Arg: expr.IntCol(1), Name: "hi"},
			},
		},
	}
	want := reference(t, rows, queries...)

	db := NewDemoDB(rows)
	// A side table for concurrent writes that don't disturb R's results.
	side := storage.NewBuilder(storage.NewSchema("side",
		storage.Attribute{Name: "x", Type: storage.Int64},
		storage.Attribute{Name: "y", Type: storage.Int64},
	))
	side.SetInts(0, []int64{1})
	side.SetInts(1, []int64{2})
	db.CreateTable(side)
	DemoWorkload(db)

	s := New(db, Config{Workers: 4, MaxInFlight: 16})
	defer s.Close()

	const (
		readers   = 8
		perReader = 30
		relayouts = 10
		inserts   = 20
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				qi := (r + i) % len(queries)
				res, err := s.Query(queries[qi])
				if err != nil {
					t.Errorf("reader %d query %d: %v", r, qi, err)
					return
				}
				if !result.Equal(res, want[qi]) {
					t.Errorf("reader %d query %d: result differs from serial direct execution", r, qi)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < relayouts; i++ {
			s.OptimizeLayouts()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		ins := plan.Insert{Table: "side", Rows: [][]storage.Word{
			{storage.EncodeInt(7), storage.EncodeInt(8)},
		}}
		for i := 0; i < inserts; i++ {
			if _, err := s.Query(ins); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Tables()
			s.Stats()
		}
	}()
	wg.Wait()

	// The side table absorbed every insert exactly once.
	res, err := s.Query(plan.Aggregate{
		Child: plan.Scan{Table: "side", Cols: []int{0}},
		Aggs:  []expr.AggSpec{{Kind: expr.Count, Name: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.DecodeInt(res.Rows[0][0]); got != 1+inserts {
		t.Fatalf("side table rows = %d, want %d", got, 1+inserts)
	}
}
