package plan

import (
	"fmt"

	"repro/internal/expr"
)

// MaxGroupCols bounds an Aggregate's group-by arity: the engines hash
// groups through a fixed-size composite key (exec.GroupKey is
// [MaxGroupCols]Word — it aliases this constant, so the two cannot
// drift). Check enforces the bound so remote plans fail validation
// instead of overrunning the key array at execution.
const MaxGroupCols = 4

// Check validates a plan against a catalog without executing it: tables
// must exist, attribute and output positions must be in range, aggregates
// must have well-formed arguments. Engines assume valid plans and panic
// otherwise (experiment wiring is fail-fast by design); the serving layer
// runs Check first so a malformed request is a 4xx, not a crashed worker.
// Errors are FieldErrors naming the offending position in the same dotted
// notation the JSON decoder uses.
func Check(n Node, c *Catalog) error {
	_, err := checkNode(n, c, "plan")
	return err
}

// checkNode validates a subtree and returns its output width.
func checkNode(n Node, c *Catalog, path string) (int, error) {
	switch v := n.(type) {
	case Scan:
		if !c.Has(v.Table) {
			return 0, fieldErrf(path+".table", "unknown table %q", v.Table)
		}
		width := c.Table(v.Table).Schema.Width()
		if len(v.Cols) == 0 {
			return 0, fieldErrf(path+".cols", "scan projects no columns")
		}
		for i, a := range v.Cols {
			if a < 0 || a >= width {
				return 0, fieldErrf(fmt.Sprintf("%s.cols[%d]", path, i),
					"attribute %d outside table %q's %d attributes", a, v.Table, width)
			}
		}
		if err := checkPred(v.Filter, width, path+".filter"); err != nil {
			return 0, err
		}
		return len(v.Cols), nil
	case Select:
		w, err := checkNode(v.Child, c, path+".child")
		if err != nil {
			return 0, err
		}
		if err := checkPred(v.Pred, w, path+".pred"); err != nil {
			return 0, err
		}
		return w, nil
	case Project:
		w, err := checkNode(v.Child, c, path+".child")
		if err != nil {
			return 0, err
		}
		if len(v.Exprs) == 0 {
			return 0, fieldErrf(path+".exprs", "projection computes no expressions")
		}
		for i, e := range v.Exprs {
			if err := checkExpr(e, w, fmt.Sprintf("%s.exprs[%d]", path, i)); err != nil {
				return 0, err
			}
		}
		if len(v.Names) > len(v.Exprs) {
			return 0, fieldErrf(path+".names", "%d names for %d expressions", len(v.Names), len(v.Exprs))
		}
		return len(v.Exprs), nil
	case HashJoin:
		lw, err := checkNode(v.Left, c, path+".left")
		if err != nil {
			return 0, err
		}
		rw, err := checkNode(v.Right, c, path+".right")
		if err != nil {
			return 0, err
		}
		if v.LeftKey < 0 || v.LeftKey >= lw {
			return 0, fieldErrf(path+".leftKey", "key position %d outside the left side's %d columns", v.LeftKey, lw)
		}
		if v.RightKey < 0 || v.RightKey >= rw {
			return 0, fieldErrf(path+".rightKey", "key position %d outside the right side's %d columns", v.RightKey, rw)
		}
		return lw + rw, nil
	case Aggregate:
		w, err := checkNode(v.Child, c, path+".child")
		if err != nil {
			return 0, err
		}
		if len(v.GroupBy) > MaxGroupCols {
			return 0, fieldErrf(path+".groupBy",
				"%d group columns, engines support at most %d", len(v.GroupBy), MaxGroupCols)
		}
		for i, g := range v.GroupBy {
			if g < 0 || g >= w {
				return 0, fieldErrf(fmt.Sprintf("%s.groupBy[%d]", path, i),
					"group position %d outside the child's %d columns", g, w)
			}
		}
		if len(v.Aggs) == 0 {
			return 0, fieldErrf(path+".aggs", "aggregate computes no aggregates")
		}
		for i, a := range v.Aggs {
			apath := fmt.Sprintf("%s.aggs[%d]", path, i)
			if a.Arg == nil {
				if a.Kind != expr.Count {
					return 0, fieldErrf(apath+".arg", "aggregate %q requires an argument", a.Kind)
				}
				continue
			}
			if err := checkExpr(a.Arg, w, apath+".arg"); err != nil {
				return 0, err
			}
		}
		return len(v.GroupBy) + len(v.Aggs), nil
	case Sort:
		w, err := checkNode(v.Child, c, path+".child")
		if err != nil {
			return 0, err
		}
		for i, k := range v.Keys {
			if k.Pos < 0 || k.Pos >= w {
				return 0, fieldErrf(fmt.Sprintf("%s.keys[%d].pos", path, i),
					"sort position %d outside the child's %d columns", k.Pos, w)
			}
		}
		return w, nil
	case Limit:
		w, err := checkNode(v.Child, c, path+".child")
		if err != nil {
			return 0, err
		}
		if v.N < 0 {
			return 0, fieldErrf(path+".n", "limit must be >= 0, got %d", v.N)
		}
		return w, nil
	case Insert:
		if !c.Has(v.Table) {
			return 0, fieldErrf(path+".table", "unknown table %q", v.Table)
		}
		width := c.Table(v.Table).Schema.Width()
		for i, r := range v.Rows {
			if len(r) != width {
				return 0, fieldErrf(fmt.Sprintf("%s.rows[%d]", path, i),
					"row has %d values, table %q has %d attributes", len(r), v.Table, width)
			}
		}
		return 1, nil
	case nil:
		return 0, fieldErrf(path, "missing plan node")
	}
	return 0, fieldErrf(path, "unsupported plan node type %T", n)
}

func checkPred(p expr.Pred, width int, path string) error {
	if p == nil {
		return nil
	}
	for _, a := range expr.PredAttrs(p) {
		if a < 0 || a >= width {
			return fieldErrf(path, "predicate references attribute %d outside the %d available", a, width)
		}
	}
	return nil
}

func checkExpr(e expr.Expr, width int, path string) error {
	if e == nil {
		return fieldErrf(path, "missing expression")
	}
	for _, a := range expr.ExprAttrs(e) {
		if a < 0 || a >= width {
			return fieldErrf(path, "expression references attribute %d outside the %d available", a, width)
		}
	}
	return nil
}
