package plan

import (
	"bytes"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func shapeOf(t *testing.T, n Node) []byte {
	t.Helper()
	data, err := MarshalNode(Normalize(n))
	if err != nil {
		t.Fatalf("marshal normalized plan: %v", err)
	}
	return data
}

// TestNormalizeCollapsesConstants: plans differing only in bound constants
// share one normalized shape; structural differences keep shapes distinct.
func TestNormalizeCollapsesConstants(t *testing.T) {
	q := func(threshold int64, k int) Node {
		return Limit{N: k, Child: Sort{
			Child: Select{
				Child: Scan{Table: "R", Filter: expr.And{Preds: []expr.Pred{
					expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(threshold)},
					expr.Between{Attr: 1, Lo: storage.EncodeInt(1), Hi: storage.EncodeInt(9)},
				}}, Cols: []int{0, 1, 2}},
				Pred: expr.Cmp{Attr: 2, Op: expr.Ge, Val: storage.EncodeInt(threshold / 2)},
			},
			Keys: []SortKey{{Pos: 1, Desc: true}},
		}}
	}
	a, b := shapeOf(t, q(100, 5)), shapeOf(t, q(99_999, 7))
	if !bytes.Equal(a, b) {
		t.Fatalf("constant-only variants normalize to different shapes:\n%s\n%s", a, b)
	}
	c := shapeOf(t, q(100, 5).(Limit).Child) // drop the Limit: different shape
	if bytes.Equal(a, c) {
		t.Fatal("structurally different plans must keep distinct shapes")
	}
}

// TestNormalizeCoversAllConstants walks the remaining constant carriers:
// projection arithmetic, aggregate arguments, code sets, insert rows.
func TestNormalizeCoversAllConstants(t *testing.T) {
	set1 := storage.NewCodeSet([]storage.Word{1, 2}, 8)
	set2 := storage.NewCodeSet([]storage.Word{5}, 8)
	q := func(set *storage.CodeSet, c int64) Node {
		return Aggregate{
			Child: Project{
				Child: Scan{Table: "R", Filter: expr.InSet{Attr: 0, Set: set}, Cols: []int{0, 1}},
				Exprs: []expr.Expr{expr.Arith{Op: expr.Add, L: expr.IntCol(0), R: expr.IntConst(c)}},
				Names: []string{"x"},
			},
			Aggs: []expr.AggSpec{{Kind: expr.Sum, Arg: expr.Arith{Op: expr.Mul, L: expr.IntCol(0), R: expr.IntConst(c)}, Name: "s"}},
		}
	}
	if !bytes.Equal(shapeOf(t, q(set1, 3)), shapeOf(t, q(set2, 44))) {
		t.Fatal("expression constants not normalized out")
	}
	ins1 := Insert{Table: "R", Rows: [][]storage.Word{{1, 2}}}
	ins2 := Insert{Table: "R", Rows: [][]storage.Word{{3, 4}, {5, 6}}}
	if !bytes.Equal(shapeOf(t, ins1), shapeOf(t, ins2)) {
		t.Fatal("insert tuples not normalized out")
	}
}

// TestNormalizeDoesNotMutate: the original plan's constants survive.
func TestNormalizeDoesNotMutate(t *testing.T) {
	p := Select{
		Child: Scan{Table: "R", Cols: []int{0}},
		Pred:  expr.And{Preds: []expr.Pred{expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(42)}}},
	}
	Normalize(p)
	if got := p.Pred.(expr.And).Preds[0].(expr.Cmp).Val; got != storage.EncodeInt(42) {
		t.Fatalf("Normalize mutated the source plan: val = %d", got)
	}
}
