package plan

import (
	"encoding/json"
	"fmt"

	"repro/internal/expr"
	"repro/internal/storage"
)

// JSON (de)serialization of plans, used by the serving front-end (plans
// arrive as request bodies) and by the service's prepared-plan cache
// (the canonical encoding doubles as the cache key). The format is a
// tagged union: nodes carry "op", predicates "pred", scalar expressions
// "expr". Constants are typed objects with exactly one value field:
//
//	{"int": 5} {"float": 1.5} {"bool": true} {"code": 7} {"word": 18...}
//
// "code" is a dictionary code for string attributes; "word" is the raw
// order-preserving encoding (what MarshalNode emits, since plan constants
// do not carry their type). Decoding errors name the offending field by
// its dotted path, e.g. `plan.child.filter.op`.

// maxCodeSpace bounds an inset predicate's dictionary-code space: the
// decoded bitset allocates space/8 bytes eagerly, so a remote plan must
// not pick the size. 1<<24 codes (a 2 MB set) is far beyond any
// dictionary the benchmarks build.
const maxCodeSpace = 1 << 24

// FieldError is a validation failure naming the JSON field it occurred at.
type FieldError struct {
	Field string // dotted path from the root, e.g. "plan.left.cols[2]"
	Msg   string
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("plan: invalid field %s: %s", e.Field, e.Msg)
}

func fieldErrf(path, format string, args ...any) error {
	return &FieldError{Field: path, Msg: fmt.Sprintf(format, args...)}
}

// MarshalNode encodes a plan to its canonical JSON form. Every plan built
// from the package's node types round-trips through UnmarshalNode.
func MarshalNode(n Node) ([]byte, error) {
	v, err := nodeToJSON(n, "plan")
	if err != nil {
		return nil, err
	}
	return json.Marshal(v)
}

// UnmarshalNode decodes a plan from JSON, validating structure as it goes;
// errors name the offending field. The result is structurally valid but
// not yet bound to any catalog — run Check before executing it.
func UnmarshalNode(data []byte) (Node, error) {
	return decodeNode(data, "plan")
}

// ---------------------------------------------------------------- marshal

func nodeToJSON(n Node, path string) (map[string]any, error) {
	switch v := n.(type) {
	case Scan:
		m := map[string]any{"op": "scan", "table": v.Table, "cols": intsOrEmpty(v.Cols)}
		if v.Filter != nil {
			p, err := predToJSON(v.Filter, path+".filter")
			if err != nil {
				return nil, err
			}
			m["filter"] = p
		}
		return m, nil
	case Select:
		child, err := nodeToJSON(v.Child, path+".child")
		if err != nil {
			return nil, err
		}
		p, err := predToJSON(v.Pred, path+".pred")
		if err != nil {
			return nil, err
		}
		return map[string]any{"op": "select", "child": child, "pred": p}, nil
	case Project:
		child, err := nodeToJSON(v.Child, path+".child")
		if err != nil {
			return nil, err
		}
		exprs := make([]any, len(v.Exprs))
		for i, e := range v.Exprs {
			ej, err := exprToJSON(e, fmt.Sprintf("%s.exprs[%d]", path, i))
			if err != nil {
				return nil, err
			}
			exprs[i] = ej
		}
		return map[string]any{"op": "project", "child": child, "exprs": exprs, "names": v.Names}, nil
	case HashJoin:
		left, err := nodeToJSON(v.Left, path+".left")
		if err != nil {
			return nil, err
		}
		right, err := nodeToJSON(v.Right, path+".right")
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"op": "hashjoin", "left": left, "right": right,
			"leftKey": v.LeftKey, "rightKey": v.RightKey,
		}, nil
	case Aggregate:
		child, err := nodeToJSON(v.Child, path+".child")
		if err != nil {
			return nil, err
		}
		aggs := make([]any, len(v.Aggs))
		for i, a := range v.Aggs {
			aj, err := aggToJSON(a, fmt.Sprintf("%s.aggs[%d]", path, i))
			if err != nil {
				return nil, err
			}
			aggs[i] = aj
		}
		return map[string]any{
			"op": "aggregate", "child": child,
			"groupBy": intsOrEmpty(v.GroupBy), "aggs": aggs,
		}, nil
	case Sort:
		child, err := nodeToJSON(v.Child, path+".child")
		if err != nil {
			return nil, err
		}
		keys := make([]any, len(v.Keys))
		for i, k := range v.Keys {
			keys[i] = map[string]any{"pos": k.Pos, "desc": k.Desc}
		}
		return map[string]any{"op": "sort", "child": child, "keys": keys}, nil
	case Limit:
		child, err := nodeToJSON(v.Child, path+".child")
		if err != nil {
			return nil, err
		}
		return map[string]any{"op": "limit", "child": child, "n": v.N}, nil
	case Insert:
		rows := make([]any, len(v.Rows))
		for i, r := range v.Rows {
			row := make([]any, len(r))
			for j, w := range r {
				row[j] = map[string]any{"word": w}
			}
			rows[i] = row
		}
		return map[string]any{"op": "insert", "table": v.Table, "rows": rows}, nil
	case nil:
		return nil, fieldErrf(path, "missing plan node")
	}
	return nil, fieldErrf(path, "unsupported plan node type %T", n)
}

func intsOrEmpty(xs []int) []int {
	if xs == nil {
		return []int{}
	}
	return xs
}

func predToJSON(p expr.Pred, path string) (map[string]any, error) {
	switch v := p.(type) {
	case expr.Cmp:
		return map[string]any{"pred": "cmp", "attr": v.Attr, "op": v.Op.String(), "val": map[string]any{"word": v.Val}}, nil
	case expr.Between:
		return map[string]any{
			"pred": "between", "attr": v.Attr,
			"lo": map[string]any{"word": v.Lo}, "hi": map[string]any{"word": v.Hi},
		}, nil
	case expr.InSet:
		if v.Set == nil {
			return nil, fieldErrf(path+".codes", "inset predicate has no code set")
		}
		return map[string]any{"pred": "inset", "attr": v.Attr, "codes": v.Set.Codes(), "space": v.Set.Size()}, nil
	case expr.NotNull:
		return map[string]any{"pred": "notnull", "attr": v.Attr}, nil
	case expr.And:
		return predListToJSON("and", v.Preds, path)
	case expr.Or:
		return predListToJSON("or", v.Preds, path)
	case expr.True:
		return map[string]any{"pred": "true"}, nil
	case nil:
		return nil, nil
	}
	return nil, fieldErrf(path, "unsupported predicate type %T", p)
}

func predListToJSON(kind string, preds []expr.Pred, path string) (map[string]any, error) {
	out := make([]any, len(preds))
	for i, c := range preds {
		cj, err := predToJSON(c, fmt.Sprintf("%s.preds[%d]", path, i))
		if err != nil {
			return nil, err
		}
		if cj == nil {
			return nil, fieldErrf(fmt.Sprintf("%s.preds[%d]", path, i), "missing predicate")
		}
		out[i] = cj
	}
	return map[string]any{"pred": kind, "preds": out}, nil
}

func exprToJSON(e expr.Expr, path string) (map[string]any, error) {
	switch v := e.(type) {
	case expr.Col:
		return map[string]any{"expr": "col", "attr": v.Attr, "type": v.Ty.String()}, nil
	case expr.Const:
		return map[string]any{"expr": "const", "type": v.Ty.String(), "val": map[string]any{"word": v.Val}}, nil
	case expr.Arith:
		l, err := exprToJSON(v.L, path+".left")
		if err != nil {
			return nil, err
		}
		r, err := exprToJSON(v.R, path+".right")
		if err != nil {
			return nil, err
		}
		return map[string]any{"expr": "arith", "op": arithOpName(v.Op), "left": l, "right": r}, nil
	case nil:
		return nil, fieldErrf(path, "missing expression")
	}
	return nil, fieldErrf(path, "unsupported expression type %T", e)
}

func aggToJSON(a expr.AggSpec, path string) (map[string]any, error) {
	m := map[string]any{"agg": a.Kind.String(), "name": a.Name}
	if a.Arg != nil {
		aj, err := exprToJSON(a.Arg, path+".arg")
		if err != nil {
			return nil, err
		}
		m["arg"] = aj
	} else if a.Kind != expr.Count {
		return nil, fieldErrf(path+".arg", "aggregate %q requires an argument", a.Kind)
	}
	return m, nil
}

func arithOpName(op expr.ArithOp) string {
	switch op {
	case expr.Add:
		return "+"
	case expr.Sub:
		return "-"
	case expr.Mul:
		return "*"
	default:
		return "/"
	}
}

// -------------------------------------------------------------- unmarshal

// obj is one decoded JSON object plus the path it sits at, the unit the
// tagged-union decoders work on.
type obj struct {
	path string
	m    map[string]json.RawMessage
}

func decodeObj(data []byte, path string) (*obj, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fieldErrf(path, "expected a JSON object: %v", err)
	}
	if m == nil {
		return nil, fieldErrf(path, "expected a JSON object, got null")
	}
	return &obj{path: path, m: m}, nil
}

func (o *obj) has(key string) bool { _, ok := o.m[key]; return ok }

func (o *obj) at(key string) string { return o.path + "." + key }

func (o *obj) str(key string) (string, error) {
	raw, ok := o.m[key]
	if !ok {
		return "", fieldErrf(o.at(key), "missing required field")
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", fieldErrf(o.at(key), "expected a string")
	}
	return s, nil
}

func (o *obj) intField(key string) (int, error) {
	raw, ok := o.m[key]
	if !ok {
		return 0, fieldErrf(o.at(key), "missing required field")
	}
	var n int
	if err := json.Unmarshal(raw, &n); err != nil {
		return 0, fieldErrf(o.at(key), "expected an integer")
	}
	return n, nil
}

func (o *obj) boolField(key string) (bool, error) {
	raw, ok := o.m[key]
	if !ok {
		return false, nil
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err != nil {
		return false, fieldErrf(o.at(key), "expected a boolean")
	}
	return b, nil
}

func (o *obj) intList(key string, required bool) ([]int, error) {
	raw, ok := o.m[key]
	if !ok {
		if required {
			return nil, fieldErrf(o.at(key), "missing required field")
		}
		return nil, nil
	}
	var xs []int
	if err := json.Unmarshal(raw, &xs); err != nil {
		return nil, fieldErrf(o.at(key), "expected an array of integers")
	}
	return xs, nil
}

func (o *obj) rawList(key string, required bool) ([]json.RawMessage, error) {
	raw, ok := o.m[key]
	if !ok {
		if required {
			return nil, fieldErrf(o.at(key), "missing required field")
		}
		return nil, nil
	}
	var xs []json.RawMessage
	if err := json.Unmarshal(raw, &xs); err != nil {
		return nil, fieldErrf(o.at(key), "expected an array")
	}
	return xs, nil
}

func decodeNode(data []byte, path string) (Node, error) {
	o, err := decodeObj(data, path)
	if err != nil {
		return nil, err
	}
	op, err := o.str("op")
	if err != nil {
		return nil, err
	}
	switch op {
	case "scan":
		table, err := o.str("table")
		if err != nil {
			return nil, err
		}
		cols, err := o.intList("cols", true)
		if err != nil {
			return nil, err
		}
		for i, c := range cols {
			if c < 0 {
				return nil, fieldErrf(fmt.Sprintf("%s.cols[%d]", path, i), "attribute index must be >= 0, got %d", c)
			}
		}
		var filter expr.Pred
		if o.has("filter") {
			filter, err = decodePred(o.m["filter"], o.at("filter"))
			if err != nil {
				return nil, err
			}
		}
		return Scan{Table: table, Filter: filter, Cols: cols}, nil
	case "select":
		child, err := o.childNode("child")
		if err != nil {
			return nil, err
		}
		if !o.has("pred") {
			return nil, fieldErrf(o.at("pred"), "missing required field")
		}
		pred, err := decodePred(o.m["pred"], o.at("pred"))
		if err != nil {
			return nil, err
		}
		return Select{Child: child, Pred: pred}, nil
	case "project":
		child, err := o.childNode("child")
		if err != nil {
			return nil, err
		}
		raws, err := o.rawList("exprs", true)
		if err != nil {
			return nil, err
		}
		if len(raws) == 0 {
			return nil, fieldErrf(o.at("exprs"), "projection needs at least one expression")
		}
		exprs := make([]expr.Expr, len(raws))
		for i, r := range raws {
			e, err := decodeExpr(r, fmt.Sprintf("%s.exprs[%d]", path, i))
			if err != nil {
				return nil, err
			}
			exprs[i] = e
		}
		var names []string
		if o.has("names") {
			if err := json.Unmarshal(o.m["names"], &names); err != nil {
				return nil, fieldErrf(o.at("names"), "expected an array of strings")
			}
			if len(names) > len(exprs) {
				return nil, fieldErrf(o.at("names"), "%d names for %d expressions", len(names), len(exprs))
			}
		}
		return Project{Child: child, Exprs: exprs, Names: names}, nil
	case "hashjoin":
		left, err := o.childNode("left")
		if err != nil {
			return nil, err
		}
		right, err := o.childNode("right")
		if err != nil {
			return nil, err
		}
		lk, err := o.intField("leftKey")
		if err != nil {
			return nil, err
		}
		rk, err := o.intField("rightKey")
		if err != nil {
			return nil, err
		}
		if lk < 0 {
			return nil, fieldErrf(o.at("leftKey"), "key position must be >= 0, got %d", lk)
		}
		if rk < 0 {
			return nil, fieldErrf(o.at("rightKey"), "key position must be >= 0, got %d", rk)
		}
		return HashJoin{Left: left, Right: right, LeftKey: lk, RightKey: rk}, nil
	case "aggregate":
		child, err := o.childNode("child")
		if err != nil {
			return nil, err
		}
		groupBy, err := o.intList("groupBy", false)
		if err != nil {
			return nil, err
		}
		for i, g := range groupBy {
			if g < 0 {
				return nil, fieldErrf(fmt.Sprintf("%s.groupBy[%d]", path, i), "group position must be >= 0, got %d", g)
			}
		}
		raws, err := o.rawList("aggs", true)
		if err != nil {
			return nil, err
		}
		if len(raws) == 0 {
			return nil, fieldErrf(o.at("aggs"), "aggregate needs at least one aggregate spec")
		}
		aggs := make([]expr.AggSpec, len(raws))
		for i, r := range raws {
			a, err := decodeAgg(r, fmt.Sprintf("%s.aggs[%d]", path, i))
			if err != nil {
				return nil, err
			}
			aggs[i] = a
		}
		return Aggregate{Child: child, GroupBy: groupBy, Aggs: aggs}, nil
	case "sort":
		child, err := o.childNode("child")
		if err != nil {
			return nil, err
		}
		raws, err := o.rawList("keys", true)
		if err != nil {
			return nil, err
		}
		if len(raws) == 0 {
			return nil, fieldErrf(o.at("keys"), "sort needs at least one key")
		}
		keys := make([]SortKey, len(raws))
		for i, r := range raws {
			kpath := fmt.Sprintf("%s.keys[%d]", path, i)
			ko, err := decodeObj(r, kpath)
			if err != nil {
				return nil, err
			}
			pos, err := ko.intField("pos")
			if err != nil {
				return nil, err
			}
			if pos < 0 {
				return nil, fieldErrf(ko.at("pos"), "sort position must be >= 0, got %d", pos)
			}
			desc, err := ko.boolField("desc")
			if err != nil {
				return nil, err
			}
			keys[i] = SortKey{Pos: pos, Desc: desc}
		}
		return Sort{Child: child, Keys: keys}, nil
	case "limit":
		child, err := o.childNode("child")
		if err != nil {
			return nil, err
		}
		n, err := o.intField("n")
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fieldErrf(o.at("n"), "limit must be >= 0, got %d", n)
		}
		return Limit{Child: child, N: n}, nil
	case "insert":
		table, err := o.str("table")
		if err != nil {
			return nil, err
		}
		raws, err := o.rawList("rows", true)
		if err != nil {
			return nil, err
		}
		rows := make([][]storage.Word, len(raws))
		for i, r := range raws {
			rpath := fmt.Sprintf("%s.rows[%d]", path, i)
			var cells []json.RawMessage
			if err := json.Unmarshal(r, &cells); err != nil {
				return nil, fieldErrf(rpath, "expected an array of values")
			}
			row := make([]storage.Word, len(cells))
			for j, cell := range cells {
				w, err := decodeValue(cell, fmt.Sprintf("%s[%d]", rpath, j))
				if err != nil {
					return nil, err
				}
				row[j] = w
			}
			rows[i] = row
		}
		return Insert{Table: table, Rows: rows}, nil
	case "":
		return nil, fieldErrf(o.at("op"), "missing operator name")
	}
	return nil, fieldErrf(o.at("op"), "unknown operator %q (want scan, select, project, hashjoin, aggregate, sort, limit or insert)", op)
}

func (o *obj) childNode(key string) (Node, error) {
	raw, ok := o.m[key]
	if !ok {
		return nil, fieldErrf(o.at(key), "missing required field")
	}
	return decodeNode(raw, o.at(key))
}

func decodePred(data []byte, path string) (expr.Pred, error) {
	o, err := decodeObj(data, path)
	if err != nil {
		return nil, err
	}
	kind, err := o.str("pred")
	if err != nil {
		return nil, err
	}
	attr := func() (int, error) {
		a, err := o.intField("attr")
		if err != nil {
			return 0, err
		}
		if a < 0 {
			return 0, fieldErrf(o.at("attr"), "attribute index must be >= 0, got %d", a)
		}
		return a, nil
	}
	switch kind {
	case "cmp":
		a, err := attr()
		if err != nil {
			return nil, err
		}
		opName, err := o.str("op")
		if err != nil {
			return nil, err
		}
		op, ok := cmpOpByName(opName)
		if !ok {
			return nil, fieldErrf(o.at("op"), "unknown comparison %q (want =, <>, <, <=, > or >=)", opName)
		}
		if !o.has("val") {
			return nil, fieldErrf(o.at("val"), "missing required field")
		}
		val, err := decodeValue(o.m["val"], o.at("val"))
		if err != nil {
			return nil, err
		}
		return expr.Cmp{Attr: a, Op: op, Val: val}, nil
	case "between":
		a, err := attr()
		if err != nil {
			return nil, err
		}
		for _, key := range []string{"lo", "hi"} {
			if !o.has(key) {
				return nil, fieldErrf(o.at(key), "missing required field")
			}
		}
		lo, err := decodeValue(o.m["lo"], o.at("lo"))
		if err != nil {
			return nil, err
		}
		hi, err := decodeValue(o.m["hi"], o.at("hi"))
		if err != nil {
			return nil, err
		}
		return expr.Between{Attr: a, Lo: lo, Hi: hi}, nil
	case "inset":
		a, err := attr()
		if err != nil {
			return nil, err
		}
		var codes []storage.Word
		if raw, ok := o.m["codes"]; !ok {
			return nil, fieldErrf(o.at("codes"), "missing required field")
		} else if err := json.Unmarshal(raw, &codes); err != nil {
			return nil, fieldErrf(o.at("codes"), "expected an array of dictionary codes")
		}
		space := 0
		if o.has("space") {
			if space, err = o.intField("space"); err != nil {
				return nil, err
			}
			// The bitset allocates space/8 bytes up front, so the bound is
			// a request-size guard, not just a sanity check: it must hold
			// before NewCodeSet runs.
			if space < 0 || space > maxCodeSpace {
				return nil, fieldErrf(o.at("space"), "code space must be in [0, %d], got %d", maxCodeSpace, space)
			}
		}
		for _, c := range codes {
			if c >= maxCodeSpace {
				return nil, fieldErrf(o.at("codes"), "dictionary code %d over the %d limit", c, maxCodeSpace)
			}
			if int(c) >= space {
				space = int(c) + 1
			}
		}
		return expr.InSet{Attr: a, Set: storage.NewCodeSet(codes, space)}, nil
	case "notnull":
		a, err := attr()
		if err != nil {
			return nil, err
		}
		return expr.NotNull{Attr: a}, nil
	case "and", "or":
		raws, err := o.rawList("preds", true)
		if err != nil {
			return nil, err
		}
		preds := make([]expr.Pred, len(raws))
		for i, r := range raws {
			p, err := decodePred(r, fmt.Sprintf("%s.preds[%d]", path, i))
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		if kind == "and" {
			return expr.And{Preds: preds}, nil
		}
		return expr.Or{Preds: preds}, nil
	case "true":
		return expr.True{}, nil
	case "":
		return nil, fieldErrf(o.at("pred"), "missing predicate kind")
	}
	return nil, fieldErrf(o.at("pred"), "unknown predicate %q (want cmp, between, inset, notnull, and, or or true)", kind)
}

func cmpOpByName(s string) (expr.CmpOp, bool) {
	for op := expr.Eq; op <= expr.Ge; op++ {
		if op.String() == s {
			return op, true
		}
	}
	return 0, false
}

func decodeExpr(data []byte, path string) (expr.Expr, error) {
	o, err := decodeObj(data, path)
	if err != nil {
		return nil, err
	}
	kind, err := o.str("expr")
	if err != nil {
		return nil, err
	}
	switch kind {
	case "col":
		a, err := o.intField("attr")
		if err != nil {
			return nil, err
		}
		if a < 0 {
			return nil, fieldErrf(o.at("attr"), "attribute index must be >= 0, got %d", a)
		}
		ty, err := o.typeField("type")
		if err != nil {
			return nil, err
		}
		return expr.Col{Attr: a, Ty: ty}, nil
	case "const":
		ty, err := o.typeField("type")
		if err != nil {
			return nil, err
		}
		if !o.has("val") {
			return nil, fieldErrf(o.at("val"), "missing required field")
		}
		val, err := decodeValue(o.m["val"], o.at("val"))
		if err != nil {
			return nil, err
		}
		return expr.Const{Val: val, Ty: ty}, nil
	case "arith":
		opName, err := o.str("op")
		if err != nil {
			return nil, err
		}
		var op expr.ArithOp
		switch opName {
		case "+":
			op = expr.Add
		case "-":
			op = expr.Sub
		case "*":
			op = expr.Mul
		case "/":
			op = expr.Div
		default:
			return nil, fieldErrf(o.at("op"), "unknown arithmetic operator %q (want +, -, * or /)", opName)
		}
		for _, key := range []string{"left", "right"} {
			if !o.has(key) {
				return nil, fieldErrf(o.at(key), "missing required field")
			}
		}
		l, err := decodeExpr(o.m["left"], o.at("left"))
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(o.m["right"], o.at("right"))
		if err != nil {
			return nil, err
		}
		if l.Type() != r.Type() {
			return nil, fieldErrf(o.at("right"), "operand types differ: %s vs %s", l.Type(), r.Type())
		}
		return expr.Arith{Op: op, L: l, R: r}, nil
	case "":
		return nil, fieldErrf(o.at("expr"), "missing expression kind")
	}
	return nil, fieldErrf(o.at("expr"), "unknown expression %q (want col, const or arith)", kind)
}

func (o *obj) typeField(key string) (storage.Type, error) {
	s, err := o.str(key)
	if err != nil {
		return 0, err
	}
	switch s {
	case "int64":
		return storage.Int64, nil
	case "float64":
		return storage.Float64, nil
	case "string":
		return storage.String, nil
	case "bool":
		return storage.Bool, nil
	}
	return 0, fieldErrf(o.at(key), "unknown type %q (want int64, float64, string or bool)", s)
}

func decodeAgg(data []byte, path string) (expr.AggSpec, error) {
	o, err := decodeObj(data, path)
	if err != nil {
		return expr.AggSpec{}, err
	}
	kindName, err := o.str("agg")
	if err != nil {
		return expr.AggSpec{}, err
	}
	var kind expr.AggKind
	switch kindName {
	case "count":
		kind = expr.Count
	case "sum":
		kind = expr.Sum
	case "min":
		kind = expr.Min
	case "max":
		kind = expr.Max
	case "avg":
		kind = expr.Avg
	default:
		return expr.AggSpec{}, fieldErrf(o.at("agg"), "unknown aggregate %q (want count, sum, min, max or avg)", kindName)
	}
	spec := expr.AggSpec{Kind: kind}
	if o.has("name") {
		if spec.Name, err = o.str("name"); err != nil {
			return expr.AggSpec{}, err
		}
	}
	if o.has("arg") {
		if spec.Arg, err = decodeExpr(o.m["arg"], o.at("arg")); err != nil {
			return expr.AggSpec{}, err
		}
	} else if kind != expr.Count {
		return expr.AggSpec{}, fieldErrf(o.at("arg"), "aggregate %q requires an argument", kindName)
	}
	return spec, nil
}

// decodeValue decodes a typed constant object into its word encoding.
// Exactly one of the value fields must be present.
func decodeValue(data []byte, path string) (storage.Word, error) {
	o, err := decodeObj(data, path)
	if err != nil {
		return 0, err
	}
	var found []string
	for _, key := range []string{"int", "float", "bool", "code", "word"} {
		if o.has(key) {
			found = append(found, key)
		}
	}
	if len(found) != 1 {
		return 0, fieldErrf(path, "want exactly one of int, float, bool, code or word, got %d", len(found))
	}
	switch key := found[0]; key {
	case "int":
		var v int64
		if err := json.Unmarshal(o.m[key], &v); err != nil {
			return 0, fieldErrf(o.at(key), "expected an integer")
		}
		return storage.EncodeInt(v), nil
	case "float":
		var v float64
		if err := json.Unmarshal(o.m[key], &v); err != nil {
			return 0, fieldErrf(o.at(key), "expected a number")
		}
		return storage.EncodeFloat(v), nil
	case "bool":
		var v bool
		if err := json.Unmarshal(o.m[key], &v); err != nil {
			return 0, fieldErrf(o.at(key), "expected a boolean")
		}
		return storage.EncodeBool(v), nil
	default: // "code", "word": raw unsigned encodings
		var v storage.Word
		if err := json.Unmarshal(o.m[key], &v); err != nil {
			return 0, fieldErrf(o.at(key), "expected an unsigned integer")
		}
		return v, nil
	}
}
