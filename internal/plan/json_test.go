package plan

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

// samplePlans covers every node, predicate and expression kind at least
// once; the round-trip and fuzz tests both draw from it.
func samplePlans() map[string]Node {
	inSet := storage.NewCodeSet([]storage.Word{1, 3, 9}, 12)
	return map[string]Node{
		"scan": Scan{Table: "R", Cols: []int{0, 1, 2}},
		"scan-filtered": Scan{
			Table: "R",
			Filter: expr.Conj(
				expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(100)},
				expr.Between{Attr: 1, Lo: storage.EncodeInt(3), Hi: storage.EncodeInt(7)},
			),
			Cols: []int{1, 2},
		},
		"scan-or-notnull": Scan{
			Table: "R",
			Filter: expr.Or{Preds: []expr.Pred{
				expr.NotNull{Attr: 2},
				expr.InSet{Attr: 3, Set: inSet},
				expr.True{},
			}},
			Cols: []int{0},
		},
		"select-project": Project{
			Child: Select{
				Child: Scan{Table: "R", Cols: []int{0, 1}},
				Pred:  expr.Cmp{Attr: 1, Op: expr.Ge, Val: storage.EncodeInt(5)},
			},
			Exprs: []expr.Expr{
				expr.Arith{Op: expr.Add, L: expr.IntCol(0), R: expr.IntConst(1)},
				expr.Arith{Op: expr.Mul, L: expr.FloatConst(2.5), R: expr.FloatConst(4)},
			},
			Names: []string{"bumped", "ten"},
		},
		"join-agg-sort-limit": Limit{
			N: 10,
			Child: Sort{
				Keys: []SortKey{{Pos: 1, Desc: true}, {Pos: 0}},
				Child: Aggregate{
					Child: HashJoin{
						Left:     Scan{Table: "R", Cols: []int{0, 1}},
						Right:    Scan{Table: "S", Cols: []int{0, 2}},
						LeftKey:  0,
						RightKey: 0,
					},
					GroupBy: []int{1},
					Aggs: []expr.AggSpec{
						{Kind: expr.Count, Name: "n"},
						{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "total"},
						{Kind: expr.Min, Arg: expr.IntCol(3), Name: "lo"},
						{Kind: expr.Max, Arg: expr.IntCol(3), Name: "hi"},
						{Kind: expr.Avg, Arg: expr.IntCol(3), Name: "mean"},
					},
				},
			},
		},
		"insert": Insert{Table: "R", Rows: [][]storage.Word{
			{storage.EncodeInt(1), storage.EncodeInt(2), storage.EncodeInt(3), storage.EncodeInt(4)},
		}},
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	for name, p := range samplePlans() {
		t.Run(name, func(t *testing.T) {
			data, err := MarshalNode(p)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			back, err := UnmarshalNode(data)
			if err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			if !reflect.DeepEqual(canonTree(p), canonTree(back)) {
				t.Fatalf("round trip drifted:\n in: %#v\nout: %#v\nvia: %s", p, back, data)
			}
			// The canonical encoding must be stable: it doubles as the
			// prepared-plan cache key.
			again, err := MarshalNode(back)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if string(data) != string(again) {
				t.Fatalf("encoding not canonical:\n first: %s\nsecond: %s", data, again)
			}
		})
	}
}

// normalize rewrites representation-level slack that DeepEqual would trip
// over: a nil Cols/GroupBy slice decodes as empty, and a CodeSet compares
// by contents.
func canonTree(n Node) Node {
	switch v := n.(type) {
	case Scan:
		v.Cols = append([]int{}, v.Cols...)
		v.Filter = canonSetPred(v.Filter)
		return v
	case Select:
		v.Child = canonTree(v.Child)
		v.Pred = canonSetPred(v.Pred)
		return v
	case Project:
		v.Child = canonTree(v.Child)
		if v.Names == nil {
			v.Names = []string{}
		}
		return v
	case HashJoin:
		v.Left = canonTree(v.Left)
		v.Right = canonTree(v.Right)
		return v
	case Aggregate:
		v.Child = canonTree(v.Child)
		v.GroupBy = append([]int{}, v.GroupBy...)
		return v
	case Sort:
		v.Child = canonTree(v.Child)
		return v
	case Limit:
		v.Child = canonTree(v.Child)
		return v
	default:
		return n
	}
}

func canonSetPred(p expr.Pred) expr.Pred {
	switch v := p.(type) {
	case expr.InSet:
		// Rebuild through the serialized form so bitset-internal slack
		// (identical contents, different backing) compares equal.
		return expr.InSet{Attr: v.Attr, Set: storage.NewCodeSet(v.Set.Codes(), v.Set.Size())}
	case expr.And:
		out := make([]expr.Pred, len(v.Preds))
		for i, c := range v.Preds {
			out[i] = canonSetPred(c)
		}
		return expr.And{Preds: out}
	case expr.Or:
		out := make([]expr.Pred, len(v.Preds))
		for i, c := range v.Preds {
			out[i] = canonSetPred(c)
		}
		return expr.Or{Preds: out}
	default:
		return p
	}
}

// TestPlanJSONErrorsNameField asserts malformed inputs are rejected with
// errors that name the offending field by path.
func TestPlanJSONErrorsNameField(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		field string
	}{
		{"not-an-object", `[1,2]`, "plan"},
		{"missing-op", `{"table":"R"}`, "plan.op"},
		{"unknown-op", `{"op":"teleport"}`, "plan.op"},
		{"scan-missing-table", `{"op":"scan","cols":[0]}`, "plan.table"},
		{"scan-missing-cols", `{"op":"scan","table":"R"}`, "plan.cols"},
		{"scan-negative-col", `{"op":"scan","table":"R","cols":[0,-2]}`, "plan.cols[1]"},
		{"scan-bad-filter", `{"op":"scan","table":"R","cols":[0],"filter":{"pred":"cmp","attr":0,"op":"!","val":{"int":1}}}`, "plan.filter.op"},
		{"nested-bad-pred", `{"op":"select","child":{"op":"scan","table":"R","cols":[0]},"pred":{"pred":"and","preds":[{"pred":"true"},{"pred":"cmp","attr":-1,"op":"=","val":{"int":1}}]}}`, "plan.pred.preds[1].attr"},
		{"value-two-kinds", `{"op":"select","child":{"op":"scan","table":"R","cols":[0]},"pred":{"pred":"cmp","attr":0,"op":"=","val":{"int":1,"float":2}}}`, "plan.pred.val"},
		{"value-no-kind", `{"op":"select","child":{"op":"scan","table":"R","cols":[0]},"pred":{"pred":"cmp","attr":0,"op":"=","val":{}}}`, "plan.pred.val"},
		{"limit-negative", `{"op":"limit","n":-1,"child":{"op":"scan","table":"R","cols":[0]}}`, "plan.n"},
		{"sort-bad-key", `{"op":"sort","keys":[{"pos":"zero"}],"child":{"op":"scan","table":"R","cols":[0]}}`, "plan.keys[0].pos"},
		{"agg-missing-arg", `{"op":"aggregate","aggs":[{"agg":"sum","name":"s"}],"child":{"op":"scan","table":"R","cols":[0]}}`, "plan.aggs[0].arg"},
		{"agg-unknown-kind", `{"op":"aggregate","aggs":[{"agg":"median"}],"child":{"op":"scan","table":"R","cols":[0]}}`, "plan.aggs[0].agg"},
		{"project-bad-expr", `{"op":"project","exprs":[{"expr":"col","attr":0,"type":"int32"}],"child":{"op":"scan","table":"R","cols":[0]}}`, "plan.exprs[0].type"},
		{"arith-type-mismatch", `{"op":"project","exprs":[{"expr":"arith","op":"+","left":{"expr":"col","attr":0,"type":"int64"},"right":{"expr":"const","type":"float64","val":{"float":1}}}],"child":{"op":"scan","table":"R","cols":[0]}}`, "plan.exprs[0].right"},
		{"join-bad-key", `{"op":"hashjoin","left":{"op":"scan","table":"R","cols":[0]},"right":{"op":"scan","table":"S","cols":[0]},"leftKey":-1,"rightKey":0}`, "plan.leftKey"},
		{"insert-bad-row", `{"op":"insert","table":"R","rows":[[{"int":1}],{"int":2}]}`, "plan.rows[1]"},
		// A remote plan must not size the inset bitset: both the declared
		// space and the codes themselves are bounded BEFORE allocation.
		{"inset-huge-space", `{"op":"scan","table":"R","cols":[0],"filter":{"pred":"inset","attr":0,"codes":[1],"space":1000000000000}}`, "plan.filter.space"},
		{"inset-huge-code", `{"op":"scan","table":"R","cols":[0],"filter":{"pred":"inset","attr":0,"codes":[1099511627776]}}`, "plan.filter.codes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalNode([]byte(tc.in))
			if err == nil {
				t.Fatalf("no error for %s", tc.in)
			}
			fe, ok := err.(*FieldError)
			if !ok {
				t.Fatalf("error %v (%T) is not a FieldError", err, err)
			}
			if fe.Field != tc.field {
				t.Fatalf("error names field %q, want %q (err: %v)", fe.Field, tc.field, err)
			}
		})
	}
}

func jsonTestCatalog() *Catalog {
	mk := func(name string, attrs int) *storage.Relation {
		as := make([]storage.Attribute, attrs)
		for i := range as {
			as[i] = storage.Attribute{Name: string(rune('a' + i)), Type: storage.Int64}
		}
		b := storage.NewBuilder(storage.NewSchema(name, as...))
		col := make([]int64, 8)
		for i := range col {
			col[i] = int64(i)
		}
		for a := 0; a < attrs; a++ {
			b.SetInts(a, col)
		}
		return b.Build(storage.NSM(attrs))
	}
	return NewCatalog().Add(mk("R", 4)).Add(mk("S", 3))
}

// TestCheck exercises the catalog-aware validation pass.
func TestCheck(t *testing.T) {
	c := jsonTestCatalog()
	for name, p := range samplePlans() {
		t.Run("valid/"+name, func(t *testing.T) {
			if name == "scan-or-notnull" {
				// InSet over attr 3 is fine structurally; codes target a
				// string dictionary the test catalog doesn't model.
			}
			if err := Check(p, c); err != nil {
				t.Fatalf("Check rejected a valid plan: %v", err)
			}
		})
	}

	bad := []struct {
		name  string
		plan  Node
		field string
	}{
		{"unknown-table", Scan{Table: "T", Cols: []int{0}}, "plan.table"},
		{"col-out-of-range", Scan{Table: "R", Cols: []int{0, 4}}, "plan.cols[1]"},
		{"filter-out-of-range", Scan{Table: "R", Cols: []int{0}, Filter: expr.Cmp{Attr: 9, Op: expr.Eq, Val: 0}}, "plan.filter"},
		{"pred-past-child", Select{Child: Scan{Table: "R", Cols: []int{0}}, Pred: expr.Cmp{Attr: 1, Op: expr.Eq, Val: 0}}, "plan.pred"},
		{"join-key-past-side", HashJoin{
			Left: Scan{Table: "R", Cols: []int{0}}, Right: Scan{Table: "S", Cols: []int{0}},
			LeftKey: 1, RightKey: 0,
		}, "plan.leftKey"},
		{"group-past-child", Aggregate{
			Child: Scan{Table: "R", Cols: []int{0}}, GroupBy: []int{2},
			Aggs: []expr.AggSpec{{Kind: expr.Count}},
		}, "plan.groupBy[0]"},
		{"sum-missing-arg", Aggregate{
			Child: Scan{Table: "R", Cols: []int{0}},
			Aggs:  []expr.AggSpec{{Kind: expr.Sum, Name: "s"}},
		}, "plan.aggs[0].arg"},
		{"sort-past-child", Sort{Child: Scan{Table: "R", Cols: []int{0}}, Keys: []SortKey{{Pos: 3}}}, "plan.keys[0].pos"},
		{"too-many-group-cols", Aggregate{
			// 5 group columns overruns the engines' fixed-size GroupKey;
			// Check must reject before MakeGroupKey can panic.
			Child:   Scan{Table: "R", Cols: []int{0, 1, 2, 3, 0}},
			GroupBy: []int{0, 1, 2, 3, 4},
			Aggs:    []expr.AggSpec{{Kind: expr.Count}},
		}, "plan.groupBy"},
		{"insert-arity", Insert{Table: "R", Rows: [][]storage.Word{{1, 2}}}, "plan.rows[0]"},
		{"nil-plan", nil, "plan"},
	}
	for _, tc := range bad {
		t.Run("invalid/"+tc.name, func(t *testing.T) {
			err := Check(tc.plan, c)
			if err == nil {
				t.Fatal("Check accepted an invalid plan")
			}
			fe, ok := err.(*FieldError)
			if !ok {
				t.Fatalf("error %v (%T) is not a FieldError", err, err)
			}
			if fe.Field != tc.field {
				t.Fatalf("error names field %q, want %q (err: %v)", fe.Field, tc.field, err)
			}
		})
	}
}

// FuzzPlanJSON feeds arbitrary bytes to the decoder: it must never panic,
// and anything it accepts must survive a marshal/unmarshal round trip.
func FuzzPlanJSON(f *testing.F) {
	for _, p := range samplePlans() {
		if data, err := MarshalNode(p); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"op":"scan"`))
	f.Add([]byte(`{"op":"limit","n":1e99,"child":{"op":"scan","table":"R","cols":[0]}}`))
	f.Add([]byte(`{"op":"select","pred":{"pred":"cmp"},"child":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := UnmarshalNode(data)
		if err != nil {
			if !strings.Contains(err.Error(), "plan") {
				t.Fatalf("error without a field path: %v", err)
			}
			return
		}
		enc, err := MarshalNode(n)
		if err != nil {
			t.Fatalf("accepted plan failed to marshal: %v", err)
		}
		if _, err := UnmarshalNode(enc); err != nil {
			t.Fatalf("canonical form failed to decode: %v\nfrom: %s", err, enc)
		}
	})
}
