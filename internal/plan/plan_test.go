package plan

import (
	"math"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func testCatalog(rows int) *Catalog {
	schema := storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Float64},
		storage.Attribute{Name: "s", Type: storage.String},
	)
	b := storage.NewBuilder(schema)
	as := make([]int64, rows)
	bs := make([]float64, rows)
	ss := make([]string, rows)
	for i := 0; i < rows; i++ {
		as[i] = int64(i % 10)
		bs[i] = float64(i)
		ss[i] = []string{"x", "y"}[i%2]
	}
	b.SetInts(0, as).SetFloats(1, bs).SetStrings(2, ss)
	return NewCatalog().Add(b.Build(storage.NSM(3)))
}

func TestCatalogLookup(t *testing.T) {
	c := testCatalog(10)
	if !c.Has("t") || c.Has("missing") {
		t.Error("Has broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("Table on unknown name must panic")
		}
	}()
	c.Table("missing")
}

func TestOutputSchemas(t *testing.T) {
	c := testCatalog(10)
	scan := Scan{Table: "t", Cols: []int{2, 0}}
	out := Output(scan, c)
	if out[0].Name != "s" || out[0].Type != storage.String || out[1].Name != "a" {
		t.Errorf("scan output = %v", out)
	}
	agg := Aggregate{Child: scan, GroupBy: []int{0}, Aggs: []expr.AggSpec{
		{Kind: expr.Count, Name: "n"},
		{Kind: expr.Avg, Arg: expr.IntCol(1), Name: "avg_a"},
	}}
	out = Output(agg, c)
	if len(out) != 3 || out[0].Name != "s" || out[1].Name != "n" || out[2].Type != storage.Float64 {
		t.Errorf("aggregate output = %v", out)
	}
	join := HashJoin{Left: scan, Right: Scan{Table: "t", Cols: []int{1}}, LeftKey: 1, RightKey: 0}
	if got := len(Output(join, c)); got != 3 {
		t.Errorf("join arity = %d, want 3", got)
	}
	proj := Project{Child: scan, Exprs: []expr.Expr{expr.IntConst(1)}, Names: []string{"one"}}
	if out := Output(proj, c); out[0].Name != "one" || out[0].Type != storage.Int64 {
		t.Errorf("project output = %v", out)
	}
	if out := Output(Insert{Table: "t"}, c); out[0].Name != "inserted" {
		t.Errorf("insert output = %v", out)
	}
}

func TestAllCols(t *testing.T) {
	c := testCatalog(1)
	got := AllCols(c.Table("t").Schema)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("AllCols = %v", got)
	}
}

func TestEstimateSelectivity(t *testing.T) {
	c := testCatalog(10000)
	cases := []struct {
		pred expr.Pred
		want float64
	}{
		{expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(3)}, 0.1},
		{expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(5)}, 0.5},
		{nil, 1.0},
		{expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(99)}, 0.0},
	}
	for _, tc := range cases {
		got := EstimateSelectivity(c, "t", tc.pred, 1000)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("selectivity = %v, want ~%v", got, tc.want)
		}
	}
	// Exhaustive when table is smaller than sample budget.
	got := EstimateSelectivity(c, "t", expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(3)}, 1_000_000)
	if got != 0.1 {
		t.Errorf("exhaustive selectivity = %v, want exactly 0.1", got)
	}
}
