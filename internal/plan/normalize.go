package plan

import (
	"repro/internal/expr"
	"repro/internal/storage"
)

// Normalize returns a structurally identical copy of the plan with every
// bound constant replaced by a zero placeholder: comparison and range
// bounds become 0, code sets become empty, scalar constants become 0, and
// insert tuples are dropped. Two plans normalize to the same tree exactly
// when they differ only in parameter values.
//
// The serving layer fingerprints plans with it to measure plan-cache
// pressure: the compiled-plan cache must key on the full plan (compiled
// forms bake constants into their fused loops), so a workload sweeping a
// parameter creates one cache entry per distinct constant. The ratio of
// cache keys to normalized shapes quantifies that blowup; collapsing it
// for real would take parameter binding (prepared plans with placeholder
// slots), a recorded follow-up.
func Normalize(n Node) Node {
	switch v := n.(type) {
	case Scan:
		v.Filter = normalizePred(v.Filter)
		return v
	case Select:
		v.Child = Normalize(v.Child)
		v.Pred = normalizePred(v.Pred)
		return v
	case Project:
		v.Child = Normalize(v.Child)
		exprs := make([]expr.Expr, len(v.Exprs))
		for i, e := range v.Exprs {
			exprs[i] = normalizeExpr(e)
		}
		v.Exprs = exprs
		return v
	case HashJoin:
		v.Left = Normalize(v.Left)
		v.Right = Normalize(v.Right)
		return v
	case Aggregate:
		v.Child = Normalize(v.Child)
		aggs := make([]expr.AggSpec, len(v.Aggs))
		for i, a := range v.Aggs {
			if a.Arg != nil {
				a.Arg = normalizeExpr(a.Arg)
			}
			aggs[i] = a
		}
		v.Aggs = aggs
		return v
	case Sort:
		v.Child = Normalize(v.Child)
		return v
	case Limit:
		v.Child = Normalize(v.Child)
		v.N = 0
		return v
	case Insert:
		v.Rows = nil
		return v
	}
	return n
}

func normalizePred(p expr.Pred) expr.Pred {
	switch v := p.(type) {
	case expr.Cmp:
		v.Val = 0
		return v
	case expr.Between:
		v.Lo, v.Hi = 0, 0
		return v
	case expr.InSet:
		v.Set = storage.NewCodeSet(nil, 0)
		return v
	case expr.And:
		preds := make([]expr.Pred, len(v.Preds))
		for i, c := range v.Preds {
			preds[i] = normalizePred(c)
		}
		return expr.And{Preds: preds}
	case expr.Or:
		preds := make([]expr.Pred, len(v.Preds))
		for i, c := range v.Preds {
			preds[i] = normalizePred(c)
		}
		return expr.Or{Preds: preds}
	default: // NotNull, True, nil carry no constants
		return p
	}
}

func normalizeExpr(e expr.Expr) expr.Expr {
	switch v := e.(type) {
	case expr.Const:
		v.Val = 0
		return v
	case expr.Arith:
		v.L = normalizeExpr(v.L)
		v.R = normalizeExpr(v.R)
		return v
	default: // Col carries no constants
		return e
	}
}
