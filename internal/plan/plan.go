// Package plan defines logical query plans and the catalog binding table
// names to memory-resident relations and their indexes. Plans are built
// programmatically (the paper's workloads are fixed query sets); all four
// execution engines consume the same plan and must produce identical
// results, which the integration tests assert.
package plan

import (
	"fmt"
	"sort"

	"math/rand"

	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/storage"
)

// Catalog maps table names to relations and registered indexes. Separate
// catalogs are built per storage layout so the same plans run unchanged
// against row, column and hybrid representations.
type Catalog struct {
	tables  map[string]*storage.Relation
	indexes map[string]map[int]index.Index
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:  map[string]*storage.Relation{},
		indexes: map[string]map[int]index.Index{},
	}
}

// Add registers rel under its schema name.
func (c *Catalog) Add(rel *storage.Relation) *Catalog {
	c.tables[rel.Schema.Name] = rel
	return c
}

// Table returns the relation bound to name; it panics on unknown names to
// keep experiment wiring fail-fast.
func (c *Catalog) Table(name string) *storage.Relation {
	r, ok := c.tables[name]
	if !ok {
		panic(fmt.Sprintf("plan: unknown table %q", name))
	}
	return r
}

// Has reports whether a table is registered.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[name]
	return ok
}

// Names returns the registered table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for name := range c.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone returns a shallow copy of the catalog for the MVCC write path:
// fresh maps, shared relation and index structures. A write transaction
// clones the catalog once, then swaps in copy-on-write relations and
// cloned indexes for only the tables it touches, leaving every untouched
// entry shared with the published version.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{
		tables:  make(map[string]*storage.Relation, len(c.tables)),
		indexes: make(map[string]map[int]index.Index, len(c.indexes)),
	}
	for name, rel := range c.tables {
		out.tables[name] = rel
	}
	for table, m := range c.indexes {
		mm := make(map[int]index.Index, len(m))
		for attr, idx := range m {
			mm[attr] = idx
		}
		out.indexes[table] = mm
	}
	return out
}

// AddIndex registers an index over table.attr.
func (c *Catalog) AddIndex(table string, attr int, idx index.Index) {
	if c.indexes[table] == nil {
		c.indexes[table] = map[int]index.Index{}
	}
	c.indexes[table][attr] = idx
}

// Index returns the index on table.attr, or nil.
func (c *Catalog) Index(table string, attr int) index.Index {
	return c.indexes[table][attr]
}

// IndexDef names one registered index: the attribute it covers and the
// structure kind ("hash" or "rbtree") — the serializable identity of an
// index (the structure itself is rebuilt from table data on restore).
type IndexDef struct {
	Attr int
	Kind string
}

// IndexDefs lists the indexes registered on a table in attribute order.
func (c *Catalog) IndexDefs(table string) []IndexDef {
	m := c.indexes[table]
	if len(m) == 0 {
		return nil
	}
	attrs := make([]int, 0, len(m))
	for a := range m {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	out := make([]IndexDef, len(attrs))
	for i, a := range attrs {
		out[i] = IndexDef{Attr: a, Kind: m[a].Kind()}
	}
	return out
}

// Node is a logical plan operator.
type Node interface{ isNode() }

// Scan reads a base table, optionally filtering on base-table attributes,
// and outputs the Cols attributes in order. Execution engines may satisfy
// an equality filter via a catalog index when one exists (the paper's
// Figure 10 compares exactly this choice).
type Scan struct {
	Table  string
	Filter expr.Pred // over base-table attribute indices; nil = all rows
	Cols   []int     // projected base-table attributes; output position i = Cols[i]
}

// Select filters the child's output. Pred references child output
// positions.
type Select struct {
	Child Node
	Pred  expr.Pred
}

// Project computes scalar expressions over the child's output.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string
}

// HashJoin is an equi-join; output is the left columns followed by the
// right columns. Keys are child output positions.
type HashJoin struct {
	Left, Right       Node
	LeftKey, RightKey int
}

// Aggregate groups the child's output by the GroupBy positions and
// computes the aggregates; output is group columns followed by aggregate
// values.
type Aggregate struct {
	Child   Node
	GroupBy []int
	Aggs    []expr.AggSpec
}

// Sort orders the child's output.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// SortKey is one ordering criterion over an output position.
type SortKey struct {
	Pos  int
	Desc bool
}

// Limit truncates the child's output.
type Limit struct {
	Child Node
	N     int
}

// Insert appends tuples (in schema attribute order) to a table,
// maintaining any registered indexes. Its result is a single row holding
// the inserted count.
type Insert struct {
	Table string
	Rows  [][]storage.Word
}

func (Scan) isNode()      {}
func (Select) isNode()    {}
func (Project) isNode()   {}
func (HashJoin) isNode()  {}
func (Aggregate) isNode() {}
func (Sort) isNode()      {}
func (Limit) isNode()     {}
func (Insert) isNode()    {}

// Column describes one output column of a plan node. String columns that
// descend untransformed from a base table carry that table's dictionary,
// so result consumers (the HTTP layer, result.Set.Format) can decode
// codes back to strings; Dict is nil when the provenance is lost (e.g. a
// computed expression) and for non-string columns.
type Column struct {
	Name string
	Type storage.Type
	Dict *storage.Dict
}

// Output computes the output schema of a plan node.
func Output(n Node, c *Catalog) []Column {
	switch v := n.(type) {
	case Scan:
		rel := c.Table(v.Table)
		out := make([]Column, len(v.Cols))
		for i, a := range v.Cols {
			out[i] = Column{Name: rel.Schema.Attrs[a].Name, Type: rel.Schema.Attrs[a].Type, Dict: rel.Dicts[a]}
		}
		return out
	case Select:
		return Output(v.Child, c)
	case Project:
		child := Output(v.Child, c)
		out := make([]Column, len(v.Exprs))
		for i, e := range v.Exprs {
			name := ""
			if i < len(v.Names) {
				name = v.Names[i]
			}
			out[i] = Column{Name: name, Type: e.Type()}
			// A bare column reference keeps its dictionary.
			if col, ok := e.(expr.Col); ok && col.Attr >= 0 && col.Attr < len(child) {
				out[i].Dict = child[col.Attr].Dict
			}
		}
		return out
	case HashJoin:
		return append(Output(v.Left, c), Output(v.Right, c)...)
	case Aggregate:
		child := Output(v.Child, c)
		out := make([]Column, 0, len(v.GroupBy)+len(v.Aggs))
		for _, g := range v.GroupBy {
			out = append(out, child[g])
		}
		for _, a := range v.Aggs {
			col := Column{Name: a.Name, Type: a.ResultType()}
			// Min/max of a string column yield codes of that column's
			// dictionary.
			if a.Kind == expr.Min || a.Kind == expr.Max {
				if argCol, ok := a.Arg.(expr.Col); ok && argCol.Attr >= 0 && argCol.Attr < len(child) {
					col.Dict = child[argCol.Attr].Dict
				}
			}
			out = append(out, col)
		}
		return out
	case Sort:
		return Output(v.Child, c)
	case Limit:
		return Output(v.Child, c)
	case Insert:
		return []Column{{Name: "inserted", Type: storage.Int64}}
	}
	panic(fmt.Sprintf("plan: unknown node %T", n))
}

// AllCols returns [0..n) — a convenience for full-width scans.
func AllCols(s *storage.Schema) []int {
	out := make([]int, s.Width())
	for i := range out {
		out[i] = i
	}
	return out
}

// EstimateSelectivity estimates the fraction of table rows passing p by
// evaluating it over a deterministic pseudo-random sample of at most
// maxSample rows (random rather than strided sampling avoids aliasing with
// periodic data). The cost model and layout optimizer consume these
// estimates.
func EstimateSelectivity(c *Catalog, table string, p expr.Pred, maxSample int) float64 {
	rel := c.Table(table)
	n := rel.Rows()
	if n == 0 {
		return 0
	}
	if p == nil {
		return 1
	}
	sample := n
	if maxSample > 0 && sample > maxSample {
		sample = maxSample
	}
	rng := rand.New(rand.NewSource(0x5e1ec7))
	match := 0
	for i := 0; i < sample; i++ {
		row := i
		if sample < n {
			row = rng.Intn(n)
		}
		if expr.EvalPred(p, func(a int) storage.Word { return rel.Value(row, a) }) {
			match++
		}
	}
	return float64(match) / float64(sample)
}
