package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/persist"
	"repro/internal/service"
)

// NodeConfig wires a Node to its service and storage.
type NodeConfig struct {
	// PrimaryURL, when non-empty, starts the node as a replica of that
	// primary. Empty starts it as a primary (Mgr must then be set).
	PrimaryURL string

	// Mgr is the node's durability manager when it starts as (or has
	// already been) a primary. A replica may leave it nil and rely on
	// OpenStorage at promotion time.
	Mgr *persist.Manager

	// OpenStorage opens the node's data directory fresh for promotion —
	// a replica holds its whole state in memory, but a primary needs a
	// WAL to feed followers. Discard the opened directory's contents;
	// the promoted catalog is checkpointed into it. Required to promote
	// a replica that has no Mgr.
	OpenStorage func() (*persist.Manager, error)

	// CheckpointWAL is the WAL-size checkpoint threshold (bytes) handed
	// to the service when promotion attaches storage (0 = default).
	CheckpointWAL int64

	// DrainWait bounds the promotion-time final catch-up against the
	// (possibly dead) old primary. Default 2s.
	DrainWait time.Duration

	// FollowerID, when set, names this node on the primary's side (the
	// X-Repl-Follower header: the follower id in GET /replication and
	// the per-follower lag histograms). Default is a process-unique name.
	FollowerID string

	// Transport, when set, replaces the replica's HTTP transport — the
	// fault-injection seam.
	Transport http.RoundTripper

	// Tune, when set, adjusts each newly built Replica (backoff, state
	// thresholds, timeouts) before its tail loop starts.
	Tune func(*Replica)
}

// Node gives a service a runtime-switchable replication role. It owns
// the replica tail loop and the primary's /repl/* endpoints, dispatching
// by current role, and drives the two transitions: Promote (replica →
// primary at term+1) and Demote (superseded primary → fenced replica of
// its successor). Handlers for POST /promote and /demote expose both
// over HTTP for operators and external coordinators.
type Node struct {
	svc *service.DB
	cfg NodeConfig

	mu      sync.Mutex
	primary *Primary
	replica *Replica
	ctx     context.Context // root, from Start; parents each tail loop
	cancel  context.CancelFunc
	done    chan struct{}
}

// NewNode builds a node; call Start to begin its initial role.
func NewNode(svc *service.DB, cfg NodeConfig) *Node {
	return &Node{svc: svc, cfg: cfg}
}

// Start enters the configured initial role. For a replica the service is
// flipped read-only and the tail loop starts immediately — the node
// serves (empty) reads while bootstrapping, rather than blocking on a
// primary that may be down.
func (n *Node) Start(ctx context.Context) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ctx = ctx
	if n.cfg.PrimaryURL == "" {
		if n.cfg.Mgr == nil {
			return errors.New("repl: a primary node needs a durability manager")
		}
		n.primary = NewPrimary(n.svc, n.cfg.Mgr)
		return nil
	}
	n.svc.SetReadOnly(n.cfg.PrimaryURL)
	n.startReplicaLocked(n.cfg.PrimaryURL)
	return nil
}

// Mount registers the role-dispatched replication endpoints and the
// failover admin endpoints on mux.
func (n *Node) Mount(mux *http.ServeMux) {
	mux.HandleFunc(SnapshotPath, func(w http.ResponseWriter, r *http.Request) {
		if p := n.currentPrimary(); p != nil {
			p.handleSnapshot(w, r)
			return
		}
		replError(w, http.StatusServiceUnavailable, errors.New("not a primary"))
	})
	mux.HandleFunc(WALPath, func(w http.ResponseWriter, r *http.Request) {
		if p := n.currentPrimary(); p != nil {
			p.handleWAL(w, r)
			return
		}
		replError(w, http.StatusServiceUnavailable, errors.New("not a primary"))
	})
	mux.HandleFunc(PromotePath, n.handlePromote)
	mux.HandleFunc(DemotePath, n.handleDemote)
}

// Manager returns the node's current durability manager (nil on a
// replica that has not been promoted).
func (n *Node) Manager() *persist.Manager {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.Mgr
}

func (n *Node) currentPrimary() *Primary {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary
}

// Promote flips a replica into a primary. The tail loop stops, a final
// drain applies whatever the old primary can still serve, storage is
// opened (when not already attached), the current catalog is
// checkpointed into it so followers have a snapshot to bootstrap from,
// and the service goes read/write at term+1. Idempotent: promoting a
// primary returns its current term.
func (n *Node) Promote() (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.primary != nil {
		return n.svc.Term(), nil
	}
	n.stopReplicaLocked()
	if rep := n.replica; rep != nil {
		wait := n.cfg.DrainWait
		if wait <= 0 {
			wait = 2 * time.Second
		}
		rep.Drain(wait)
	}
	mgr := n.cfg.Mgr
	if mgr == nil {
		if n.cfg.OpenStorage == nil {
			n.startReplicaLocked(n.svc.PrimaryURL())
			return 0, errors.New("repl: promotion needs a data directory (no storage configured)")
		}
		m, err := n.cfg.OpenStorage()
		if err != nil {
			n.startReplicaLocked(n.svc.PrimaryURL())
			return 0, fmt.Errorf("repl: opening promotion storage: %w", err)
		}
		mgr = m
		n.cfg.Mgr = m
	}
	term := n.svc.Term() + 1
	n.svc.Promote(term)
	n.svc.AttachPersist(mgr, n.cfg.CheckpointWAL)
	if _, err := n.svc.Checkpoint(); err != nil {
		return term, fmt.Errorf("repl: checkpointing promoted catalog: %w", err)
	}
	n.replica = nil
	n.primary = NewPrimary(n.svc, mgr)
	n.svc.SetReplicaState("")
	slog.Info("repl: promoted to primary", slog.Uint64("term", term))
	return term, nil
}

// Demote points the node at a (new) primary as a replica. On a current
// primary this is the post-failover fencing path: the term must be at
// least the node's own, local writes start failing with ErrFenced, the
// durability manager is detached and closed (its history is superseded;
// a re-promotion re-opens the directory fresh), and a tail loop starts
// against the new primary — whose snapshot bootstrap clears the fence.
// On a node that is already a replica it re-points the tail loop.
func (n *Node) Demote(primaryURL string, term uint64) error {
	if primaryURL == "" {
		return errors.New("repl: demote needs the new primary's URL")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if own := n.svc.Term(); term < own {
		return fmt.Errorf("repl: demote carries stale term %d (node is at %d)", term, own)
	}
	if n.primary != nil {
		n.svc.Fence(term, primaryURL)
		n.primary = nil
		if m := n.svc.DetachPersist(); m != nil {
			if err := m.Close(); err != nil {
				slog.Warn("repl: closing superseded WAL failed", slog.Any("err", err))
			}
		}
		n.cfg.Mgr = nil
		slog.Info("repl: demoted", slog.Uint64("term", term), slog.String("primary", primaryURL))
	} else {
		n.stopReplicaLocked()
		n.svc.AdoptTerm(term)
	}
	n.svc.SetReadOnly(primaryURL)
	n.startReplicaLocked(primaryURL)
	n.svc.Event(service.EventDemote, "demoted: now following a new primary", map[string]string{
		"primary": primaryURL,
		"term":    strconv.FormatUint(term, 10),
	})
	return nil
}

// startReplicaLocked builds a fresh Replica and starts its tail loop.
func (n *Node) startReplicaLocked(primaryURL string) {
	rep := NewReplica(n.svc, primaryURL)
	if n.cfg.FollowerID != "" {
		rep.ID = n.cfg.FollowerID
	}
	if n.cfg.Transport != nil {
		rep.SetTransport(n.cfg.Transport)
	}
	if n.cfg.Tune != nil {
		n.cfg.Tune(rep)
	}
	ctx := n.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	n.replica, n.cancel, n.done = rep, cancel, done
	go func() {
		defer close(done)
		rep.Run(cctx)
	}()
}

// stopReplicaLocked cancels the tail loop and waits for it to exit, so
// no poll races the role transition.
func (n *Node) stopReplicaLocked() {
	if n.cancel != nil {
		n.cancel()
		<-n.done
		n.cancel, n.done = nil, nil
	}
}

// Stop cancels any running tail loop (for tests and shutdown paths that
// do not cancel the Start context).
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopReplicaLocked()
}

// handlePromote answers POST /promote.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		replError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	term, err := n.Promote()
	if err != nil {
		replError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"role": "primary", "term": term})
}

// handleDemote answers POST /demote with body {"primary": URL, "term": N}.
func (n *Node) handleDemote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		replError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var req struct {
		Primary string `json:"primary"`
		Term    uint64 `json:"term"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		replError(w, http.StatusBadRequest, fmt.Errorf("bad demote body: %w", err))
		return
	}
	if err := n.Demote(req.Primary, req.Term); err != nil {
		status := http.StatusInternalServerError
		if req.Term < n.svc.Term() || req.Primary == "" {
			status = http.StatusConflict
		}
		if req.Primary == "" {
			status = http.StatusBadRequest
		}
		replError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"role": "replica", "primary": req.Primary, "term": n.svc.Term(),
	})
}
