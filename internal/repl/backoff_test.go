package repl

import (
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	b := &backoff{base: 100 * time.Millisecond, cap: 800 * time.Millisecond}
	// Attempt k draws from [d/2, d] where d = min(base<<k, cap).
	wants := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		800 * time.Millisecond, // pinned at the cap
		800 * time.Millisecond,
	}
	for i, want := range wants {
		got := b.next()
		if got < want/2 || got > want {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, got, want/2, want)
		}
	}
	b.reset()
	if got := b.next(); got < 50*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("after reset: delay %v outside [50ms, 100ms]", got)
	}
}

func TestBackoffJitterSpreads(t *testing.T) {
	b := &backoff{base: 64 * time.Millisecond, cap: 64 * time.Millisecond}
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		seen[b.next()] = true
	}
	// 64 draws from a 32ms-wide uniform window collide into one value only
	// if there is no jitter at all.
	if len(seen) < 2 {
		t.Fatalf("no jitter: %d distinct delays in 64 draws", len(seen))
	}
}

func TestBackoffZeroValues(t *testing.T) {
	b := &backoff{} // defaults: base 250ms, cap = base
	got := b.next()
	if got < 125*time.Millisecond || got > 250*time.Millisecond {
		t.Fatalf("zero-value backoff delay %v outside [125ms, 250ms]", got)
	}
}
