package repl

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/service"
	"repro/internal/storage"
)

// shipWAL logs a create-table plus rows/perRecord insert records and
// returns the committed WAL bytes (the stream a follower would receive)
// and the manager's epoch.
func shipWAL(b *testing.B, rows, perRecord int, coalesce bool) ([]byte, uint64) {
	b.Helper()
	db, mgr, err := persist.Open(persist.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	rel := storage.NewRelation(storage.NewSchema("t",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "grp", Type: storage.Int64},
		storage.Attribute{Name: "val", Type: storage.Int64},
	), storage.NSM(3))
	db.AddTable(rel)
	if err := mgr.LogCreateTable(db.Catalog(), "t"); err != nil {
		b.Fatal(err)
	}
	if coalesce {
		if err := mgr.SetCoalesce(time.Hour, 4096); err != nil {
			b.Fatal(err)
		}
	}
	batch := make([][]storage.Word, 0, perRecord)
	for i := 0; i < rows; i++ {
		batch = append(batch, []storage.Word{
			storage.EncodeInt(int64(i)), storage.EncodeInt(int64(i % 7)), storage.EncodeInt(int64(i % 100)),
		})
		if len(batch) == perRecord {
			if err := mgr.LogInsert("t", 3, batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := mgr.LogInsert("t", 3, batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := mgr.Flush(); err != nil {
		b.Fatal(err)
	}
	tail, err := mgr.TailRead(mgr.Epoch(), 0, 1<<31-1)
	if err != nil {
		b.Fatal(err)
	}
	return tail.Data, mgr.Epoch()
}

// BenchmarkReplication measures the two sides of log shipping: apply
// throughput on a replica (rows/s through ApplyReplicated, which is the
// recovery replay path under the service write lock) and ship bandwidth
// (WAL bytes per row for single-row inserts, with and without
// coalescing).
func BenchmarkReplication(b *testing.B) {
	const rows = 100_000

	b.Run("apply", func(b *testing.B) {
		chunk, epoch := shipWAL(b, rows, 4096, false)
		b.SetBytes(int64(len(chunk)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			svc := service.New(core.Open(), service.Config{Workers: 1})
			consumed, _, err := svc.ApplyReplicated(chunk, epoch)
			if err != nil || consumed != len(chunk) {
				b.Fatalf("apply consumed %d/%d: %v", consumed, len(chunk), err)
			}
			svc.Close()
		}
		b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
	})

	for _, c := range []struct {
		name     string
		coalesce bool
	}{{"ship-single-row", false}, {"ship-coalesced", true}} {
		b.Run(c.name, func(b *testing.B) {
			var bytesTotal int64
			rowsTotal := 0
			for i := 0; i < b.N; i++ {
				n := rows / 10
				chunk, _ := shipWAL(b, n, 1, c.coalesce)
				bytesTotal += int64(len(chunk))
				rowsTotal += n
			}
			b.ReportMetric(float64(bytesTotal)/float64(rowsTotal), "bytes/row")
		})
	}
}
