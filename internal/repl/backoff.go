package repl

import (
	"math/rand"
	"time"
)

// backoff paces retries against an unhealthy peer: capped exponential
// growth with jitter, so a fleet of replicas that lost their primary at
// the same instant does not hammer its replacement in lockstep. The
// jitter draws uniformly from [d/2, d] — enough spread to de-correlate
// retries while keeping the floor high enough that tests (and operators)
// can still reason about minimum delays.
type backoff struct {
	base    time.Duration // first delay (doubles each attempt)
	cap     time.Duration // growth ceiling
	attempt int
}

// next returns the delay to sleep before the upcoming retry and advances
// the schedule.
func (b *backoff) next() time.Duration {
	base, ceil := b.base, b.cap
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if ceil < base {
		ceil = base
	}
	d := base
	for i := 0; i < b.attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	if d < ceil {
		b.attempt++
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// reset restarts the schedule after a success.
func (b *backoff) reset() { b.attempt = 0 }
