package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/service"
)

// errResync signals that the follower's epoch view is stale (the primary
// rotated it away, or the stream is persistently unusable) and the next
// step is a fresh snapshot bootstrap.
var errResync = errors.New("repl: resync from snapshot required")

// maxStall bounds consecutive zero-progress polls (a frame whose CRC
// keeps failing, or a stream that never completes a frame) before the
// replica gives up on the tail and re-bootstraps.
const maxStall = 3

// maxBody caps one tail response read; the primary chunks at MaxChunk
// but a single oversized record is shipped whole, so leave headroom.
const maxBody = 256 << 20

// Replica follows one primary: it bootstraps the service's catalog from
// the primary's snapshot (SwapCore) and then applies the shipped WAL
// through the service's replicated-apply path, publishing progress and
// lag to /stats. Run it on its own goroutine; queries hit the service
// concurrently throughout.
type Replica struct {
	svc  *service.DB
	base string
	hc   *http.Client

	// Backoff paces retries after transport errors (default 250ms).
	Backoff time.Duration

	// Tail position: the epoch of the restored snapshot, the applied
	// byte offset into that epoch's WAL, and applied mutation records.
	epoch   uint64
	offset  int64
	records int64
	ready   bool
	stall   int
}

// NewReplica builds a follower of the primary at base (e.g.
// "http://10.0.0.1:8080"). The service should already be read-only.
func NewReplica(svc *service.DB, base string) *Replica {
	return &Replica{
		svc:  svc,
		base: base,
		// No global timeout: the WAL tail long-polls. Dead primaries are
		// detected by the dial and response-header timeouts instead.
		hc: &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			ResponseHeaderTimeout: 60 * time.Second,
		}},
		Backoff: 250 * time.Millisecond,
	}
}

// Bootstrap fetches the primary's snapshot, restores it into a fresh
// core database and swaps it into the service. The tail position resets
// to the snapshot's epoch at offset 0 — the WAL endpoint replays
// everything the snapshot does not contain.
func (r *Replica) Bootstrap() error {
	resp, err := r.hc.Get(r.base + SnapshotPath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot fetch: %s: %s", resp.Status, readErrBody(resp.Body))
	}
	snap, err := persist.DecodeSnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: decoding shipped snapshot: %w", err)
	}
	db := core.Open()
	for _, t := range snap.Tables {
		if err := t.Restore(db); err != nil {
			return fmt.Errorf("repl: restoring shipped table: %w", err)
		}
	}
	r.svc.SwapCore(db)
	r.epoch, r.offset, r.records = snap.Epoch, 0, 0
	r.ready, r.stall = true, 0
	r.svc.NoteReplicaSync()
	r.svc.SetReplicaProgress(r.epoch, 0, 0, 0, 0)
	return nil
}

// Run tails the primary until ctx is cancelled, bootstrapping (and
// re-bootstrapping after epoch rotations) as needed. Transport errors
// back off and retry; the loop never gives up — a restarted primary is
// picked up where its log stands.
func (r *Replica) Run(ctx context.Context) {
	for ctx.Err() == nil {
		if !r.ready {
			if err := r.Bootstrap(); err != nil {
				r.sleep(ctx)
				continue
			}
		}
		switch err := r.poll(ctx); {
		case err == nil:
		case errors.Is(err, errResync):
			r.ready = false
		case ctx.Err() != nil:
			return
		default:
			r.sleep(ctx)
		}
	}
}

// poll issues one tail request and applies whatever it returns.
func (r *Replica) poll(ctx context.Context) error {
	url := fmt.Sprintf("%s%s?epoch=%d&offset=%d", r.base, WALPath, r.epoch, r.offset)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		chunk, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
		if err != nil {
			return err
		}
		consumed, applied, aerr := r.svc.ApplyReplicated(chunk, r.epoch)
		r.offset += int64(consumed)
		r.records += int64(applied)
		r.publish(resp)
		if consumed == 0 && len(chunk) > 0 {
			// A frame that cannot be applied and does not advance: either
			// corrupt in transit (re-request and hope) or corrupt at the
			// source (every retry is identical) — after maxStall identical
			// failures, fall back to a snapshot bootstrap.
			r.stall++
			if r.stall >= maxStall {
				return errResync
			}
			return nil
		}
		r.stall = 0
		if aerr != nil {
			// Partial progress: the bad frame is now first at the new
			// offset; the next poll retries it and the stall counter above
			// takes over if it never yields.
			return nil
		}
		return nil
	case http.StatusNoContent:
		r.publish(resp)
		r.stall = 0
		return nil
	case http.StatusGone:
		return errResync
	default:
		// A primary that persistently cannot serve this tail (e.g. a local
		// read error on its log) still has a servable snapshot: after
		// maxStall failing polls, heal through a bootstrap instead of
		// retrying the same broken read forever.
		r.stall++
		if r.stall >= maxStall {
			return errResync
		}
		return fmt.Errorf("repl: WAL tail: %s: %s", resp.Status, readErrBody(resp.Body))
	}
}

// publish refreshes the /stats lag figures from the primary's position
// headers.
func (r *Replica) publish(resp *http.Response) {
	committed, err1 := strconv.ParseInt(resp.Header.Get(hdrCommitted), 10, 64)
	records, err2 := strconv.ParseInt(resp.Header.Get(hdrRecords), 10, 64)
	epoch, err3 := strconv.ParseUint(resp.Header.Get(hdrEpoch), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || epoch != r.epoch {
		// Position of a different epoch (mid-rotation) — lag is about to
		// be recomputed against a fresh snapshot anyway.
		r.svc.SetReplicaProgress(r.epoch, r.offset, r.records, 0, 0)
		return
	}
	r.svc.SetReplicaProgress(r.epoch, r.offset, r.records, committed-r.offset, records-r.records)
}

func (r *Replica) sleep(ctx context.Context) {
	t := time.NewTimer(r.Backoff)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func readErrBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return string(b)
}
