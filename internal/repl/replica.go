package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/service"
)

// errResync signals that the follower's epoch view is stale (the primary
// rotated it away, or the stream is persistently unusable) and the next
// step is a fresh snapshot bootstrap.
var errResync = errors.New("repl: resync from snapshot required")

// errStalePrimary reports a peer whose fencing term is lower than the
// replica's own view — a revived pre-failover primary. Its stream must
// not be applied: it forked from the authoritative history at the
// promotion point.
var errStalePrimary = errors.New("repl: primary reports a stale term")

// maxStall bounds consecutive zero-progress polls (a frame whose CRC
// keeps failing, or a stream that never completes a frame) before the
// replica gives up on the tail and re-bootstraps.
const maxStall = 3

// maxBody caps one tail response read; the primary chunks at MaxChunk
// but a single oversized record is shipped whole, so leave headroom.
const maxBody = 256 << 20

// replicaIDs makes default follower ids process-unique (tests run many
// replicas in one process).
var replicaIDs atomic.Int64

// Replica follows one primary: it bootstraps the service's catalog from
// the primary's snapshot (SwapCore) and then applies the shipped WAL
// through the service's replicated-apply path, publishing progress, lag
// and its health state machine to /stats. Run it on its own goroutine;
// queries hit the service concurrently throughout.
//
// Failure handling is a small circuit breaker. Transport errors retry
// on capped jittered exponential backoff; after DegradedAfter
// consecutive failures the replica reports itself degraded (reads keep
// serving), and after PromoteAfter it reports promote-eligible — the
// primary has been gone long enough that an operator may POST /promote.
// Zero-progress tails (maxStall polls that consume nothing) and epoch
// rotations (410) heal through a snapshot resync.
type Replica struct {
	svc  *service.DB
	base string
	hc   *http.Client

	// ID identifies this follower to the primary (the X-Repl-Follower
	// header, a metric label in the primary's per-follower lag
	// histograms and the id in its GET /replication). Defaults to a
	// process-unique name; cmd/served overrides it with the node's
	// listen address. Set before the tail loop starts.
	ID string

	// Backoff is the first retry delay after a failure; subsequent
	// failures double it (with jitter) up to BackoffCap.
	Backoff    time.Duration
	BackoffCap time.Duration

	// DegradedAfter and PromoteAfter are the circuit-breaker thresholds:
	// consecutive failed bootstrap/tail attempts before the replica
	// reports "degraded" and "promote-eligible" respectively.
	DegradedAfter int
	PromoteAfter  int

	// SnapshotTimeout bounds one snapshot fetch end-to-end;
	// PollTimeout bounds one WAL tail request (it must exceed the
	// primary's long-poll window or every idle poll times out).
	SnapshotTimeout time.Duration
	PollTimeout     time.Duration

	// Tail position: the epoch of the restored snapshot, the applied
	// byte offset into that epoch's WAL, and applied mutation records.
	epoch   uint64
	offset  int64
	records int64
	ready   bool
	stall   int

	// lagNanos is the last measured commit-to-visible lag (primary
	// commit wall-clock to local apply), reported upstream on the next
	// poll's ack headers; 0 until a fully-applied chunk carried a stamp.
	lagNanos int64

	// Circuit-breaker state (tail-loop goroutine only).
	bo        backoff
	fails     int
	everReady bool
}

// NewReplica builds a follower of the primary at base (e.g.
// "http://10.0.0.1:8080"). The service should already be read-only.
func NewReplica(svc *service.DB, base string) *Replica {
	r := &Replica{
		svc:  svc,
		base: base,
		ID:   fmt.Sprintf("follower-%d-%d", os.Getpid(), replicaIDs.Add(1)),
		// No global client timeout: the WAL tail long-polls, and per-
		// request timeouts (PollTimeout, SnapshotTimeout) bound each call
		// instead. Dead primaries are also caught by the dial and
		// response-header timeouts.
		hc: &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			ResponseHeaderTimeout: 60 * time.Second,
		}},
		Backoff:         250 * time.Millisecond,
		BackoffCap:      5 * time.Second,
		DegradedAfter:   3,
		PromoteAfter:    8,
		SnapshotTimeout: 5 * time.Minute,
		PollTimeout:     90 * time.Second,
	}
	r.setState(service.ReplStateBootstrapping)
	return r
}

// SetTransport replaces the HTTP transport — the fault-injection seam
// (wrap with faultinject.Transport to drop, delay or tear the stream).
// Call before the tail loop starts.
func (r *Replica) SetTransport(rt http.RoundTripper) { r.hc.Transport = rt }

// Bootstrap fetches the primary's snapshot, restores it into a fresh
// core database and swaps it into the service. The tail position resets
// to the snapshot's epoch at offset 0 — the WAL endpoint replays
// everything the snapshot does not contain.
func (r *Replica) Bootstrap() error { return r.bootstrap(context.Background()) }

func (r *Replica) bootstrap(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, r.timeout(r.SnapshotTimeout, 5*time.Minute))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+SnapshotPath, nil)
	if err != nil {
		return err
	}
	req.Header.Set(hdrTerm, strconv.FormatUint(r.svc.Term(), 10))
	req.Header.Set(hdrFollower, r.ID)
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := r.checkTerm(resp); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot fetch: %s: %s", resp.Status, readErrBody(resp.Body))
	}
	snap, err := persist.DecodeSnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: decoding shipped snapshot: %w", err)
	}
	db := core.Open()
	for _, t := range snap.Tables {
		if err := t.Restore(db); err != nil {
			return fmt.Errorf("repl: restoring shipped table: %w", err)
		}
	}
	r.svc.SwapCore(db)
	r.epoch, r.offset, r.records = snap.Epoch, 0, 0
	r.ready, r.stall = true, 0
	r.svc.NoteReplicaSync()
	r.svc.SetReplicaProgress(r.epoch, 0, 0, 0, 0)
	// A demoted (fenced) primary that has re-based onto the new
	// primary's snapshot is a consistent replica again.
	r.svc.ClearFence()
	return nil
}

// Run tails the primary until ctx is cancelled, bootstrapping (and
// re-bootstrapping after epoch rotations) as needed. Failures back off
// exponentially and never give up — a restarted primary is picked up
// where its log stands — while the state machine keeps /stats honest
// about how healthy the stream is.
func (r *Replica) Run(ctx context.Context) {
	for ctx.Err() == nil {
		if !r.ready {
			if r.everReady {
				r.setState(service.ReplStateResyncing)
			} else {
				r.setState(service.ReplStateBootstrapping)
			}
			if err := r.bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return
				}
				r.noteFailure(ctx)
				continue
			}
			r.everReady = true
			r.noteProgress()
		}
		switch err := r.poll(ctx); {
		case err == nil:
			r.noteProgress()
		case errors.Is(err, errResync):
			r.ready = false
		case ctx.Err() != nil:
			return
		default:
			r.noteFailure(ctx)
		}
	}
}

// Drain applies whatever committed WAL the primary can still serve, for
// up to wait — the promotion path's final catch-up attempt against a
// possibly-dead primary. It returns the number of polls that made
// progress; errors are expected (the primary usually just died) and end
// the drain. Only call it after the Run loop has stopped.
func (r *Replica) Drain(wait time.Duration) int {
	if !r.ready {
		return 0
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	progressed := 0
	for ctx.Err() == nil {
		before := r.offset
		if err := r.poll(ctx); err != nil {
			break
		}
		if r.offset == before {
			break // 204 or zero progress: caught up with what is servable
		}
		progressed++
	}
	return progressed
}

// poll issues one tail request and applies whatever it returns. Each
// round's wall time — long-poll wait included — feeds the service's
// db_repl_poll_seconds histogram.
func (r *Replica) poll(ctx context.Context) error {
	start := time.Now()
	defer func() { r.svc.ObserveReplPoll(time.Since(start).Seconds()) }()
	ctx, cancel := context.WithTimeout(ctx, r.timeout(r.PollTimeout, 90*time.Second))
	defer cancel()
	url := fmt.Sprintf("%s%s?epoch=%d&offset=%d", r.base, WALPath, r.epoch, r.offset)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set(hdrTerm, strconv.FormatUint(r.svc.Term(), 10))
	// Ack the position (and lag measurement) of the previous round; the
	// primary folds it into its per-follower registry and histograms.
	req.Header.Set(hdrFollower, r.ID)
	req.Header.Set(hdrAckEpoch, strconv.FormatUint(r.epoch, 10))
	req.Header.Set(hdrAckOffset, strconv.FormatInt(r.offset, 10))
	req.Header.Set(hdrAckRecords, strconv.FormatInt(r.records, 10))
	if r.lagNanos > 0 {
		req.Header.Set(hdrVisibleLag, strconv.FormatInt(r.lagNanos, 10))
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := r.checkTerm(resp); err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		chunk, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
		if err != nil {
			return err
		}
		consumed, applied, aerr := r.svc.ApplyReplicated(chunk, r.epoch)
		r.offset += int64(consumed)
		r.records += int64(applied)
		r.publish(resp)
		r.noteApply(resp, len(chunk), consumed, applied)
		if consumed == 0 && len(chunk) > 0 {
			// A frame that cannot be applied and does not advance: either
			// corrupt in transit (re-request and hope) or corrupt at the
			// source (every retry is identical) — after maxStall identical
			// failures, fall back to a snapshot bootstrap.
			r.stall++
			if r.stall >= maxStall {
				return errResync
			}
			return nil
		}
		r.stall = 0
		if aerr != nil {
			// Partial progress: the bad frame is now first at the new
			// offset; the next poll retries it and the stall counter above
			// takes over if it never yields.
			return nil
		}
		return nil
	case http.StatusNoContent:
		r.publish(resp)
		r.stall = 0
		return nil
	case http.StatusGone:
		return errResync
	default:
		// A primary that persistently cannot serve this tail (e.g. a local
		// read error on its log) still has a servable snapshot: after
		// maxStall failing polls, heal through a bootstrap instead of
		// retrying the same broken read forever.
		r.stall++
		if r.stall >= maxStall {
			return errResync
		}
		return fmt.Errorf("repl: WAL tail: %s: %s", resp.Status, readErrBody(resp.Body))
	}
}

// noteApply closes the write-tracing loop on one applied chunk: it
// measures commit-to-visible lag (the primary's stamped commit
// wall-clock time to now, valid only when the whole chunk applied — a
// partial apply has not yet made the stamped commit visible) and logs
// the apply with the originating write's correlation id, so grepping one
// X-Query-Id walks the write from the client's request through the
// primary's WAL commit to this replica's publish.
func (r *Replica) noteApply(resp *http.Response, chunkLen, consumed, applied int) {
	if applied == 0 {
		return
	}
	seq, _ := strconv.ParseInt(resp.Header.Get(hdrCommitSeq), 10, 64)
	commitNanos, _ := strconv.ParseInt(resp.Header.Get(hdrCommitTime), 10, 64)
	var lagNanos int64
	if commitNanos > 0 && consumed == chunkLen {
		lagNanos = max(time.Now().UnixNano()-commitNanos, 0)
		r.lagNanos = lagNanos
		r.svc.SetReplicaVisibleLag(lagNanos)
	}
	args := []any{
		slog.Int64("commitSeq", seq),
		slog.Uint64("epoch", r.epoch),
		slog.Int64("offset", r.offset),
		slog.Int("records", applied),
	}
	if qid := resp.Header.Get(hdrQueryID); qid != "" {
		args = append(args, slog.String("id", qid))
	}
	if lagNanos > 0 {
		args = append(args, slog.Int64("visibleLagMicros", lagNanos/1e3))
	}
	r.svc.Logger().Debug("repl: applied", args...)
}

// checkTerm reconciles the peer's fencing term with ours: adopt a higher
// one (the normal propagation path), refuse a lower one (a revived
// pre-failover primary whose history forked at the promotion).
func (r *Replica) checkTerm(resp *http.Response) error {
	v := resp.Header.Get(hdrTerm)
	if v == "" {
		return nil
	}
	term, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return nil
	}
	if own := r.svc.Term(); term < own {
		return fmt.Errorf("%w: peer at term %d, local view is %d", errStalePrimary, term, own)
	}
	r.svc.AdoptTerm(term)
	return nil
}

// publish refreshes the /stats lag figures from the primary's position
// headers.
func (r *Replica) publish(resp *http.Response) {
	committed, err1 := strconv.ParseInt(resp.Header.Get(hdrCommitted), 10, 64)
	records, err2 := strconv.ParseInt(resp.Header.Get(hdrRecords), 10, 64)
	epoch, err3 := strconv.ParseUint(resp.Header.Get(hdrEpoch), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || epoch != r.epoch {
		// Position of a different epoch (mid-rotation) — lag is about to
		// be recomputed against a fresh snapshot anyway.
		r.svc.SetReplicaProgress(r.epoch, r.offset, r.records, 0, 0)
		return
	}
	r.svc.SetReplicaProgress(r.epoch, r.offset, r.records, committed-r.offset, records-r.records)
}

// noteProgress resets the circuit breaker after a successful poll or
// bootstrap.
func (r *Replica) noteProgress() {
	r.fails = 0
	r.bo.reset()
	r.setState(service.ReplStateStreaming)
}

// noteFailure advances the circuit breaker — counting the retry,
// publishing the state transition, and sleeping the backoff.
func (r *Replica) noteFailure(ctx context.Context) {
	r.fails++
	r.svc.NoteReplicaRetry()
	switch {
	case r.fails >= r.threshold(r.PromoteAfter, 8):
		r.setState(service.ReplStatePromoteEligible)
	case r.fails >= r.threshold(r.DegradedAfter, 3):
		r.setState(service.ReplStateDegraded)
	}
	r.bo.base, r.bo.cap = r.Backoff, r.BackoffCap
	t := time.NewTimer(r.bo.next())
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (r *Replica) setState(s string) { r.svc.SetReplicaState(s) }

func (r *Replica) timeout(d, def time.Duration) time.Duration {
	if d > 0 {
		return d
	}
	return def
}

func (r *Replica) threshold(n, def int) int {
	if n > 0 {
		return n
	}
	return def
}

func readErrBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return string(b)
}
