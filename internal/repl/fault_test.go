package repl

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/persist"
	"repro/internal/plan"
	"repro/internal/service"
)

// startFaultReplica wires a follower through a fault-injecting transport
// and runs its tail loop (no eager bootstrap — the Run loop owns every
// retry, so injected bootstrap faults are exercised too).
func startFaultReplica(t *testing.T, url string, tr *faultinject.Transport) (*service.DB, *Replica) {
	t.Helper()
	svc := service.New(core.Open(), service.Config{Workers: 1})
	svc.SetReadOnly(url)
	rep := NewReplica(svc, url)
	fastTune(rep)
	rep.SetTransport(tr)
	ctx, cancel := context.WithCancel(context.Background())
	go rep.Run(ctx)
	t.Cleanup(func() {
		cancel()
		svc.Close()
	})
	return svc, rep
}

// TestResyncRacesConcurrentQueries rotates the primary's epoch (410 →
// snapshot resync) while injected delays hold the snapshot fetch open
// and query goroutines hammer the replica — the race between SwapCore
// and concurrent reads, run under -race.
func TestResyncRacesConcurrentQueries(t *testing.T) {
	pri := startPrimary(t)
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 300))
	loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,100\n1,200\n")

	tr := &faultinject.Transport{}
	// Hold every snapshot fetch open for a while: queries keep running
	// against the old catalog during the widened resync window.
	slow := tr.Add(&faultinject.Rule{Path: SnapshotPath, Delay: 100 * time.Millisecond})

	rep, _ := startFaultReplica(t, pri.srv.URL, tr)
	waitCaughtUp(t, rep, pri)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	q := plan.Aggregate{
		Child:   plan.Scan{Table: "t", Cols: []int{1, 0}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "n"}},
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rep.Query(q); err != nil {
					t.Errorf("replica query during resync: %v", err)
					return
				}
			}
		}()
	}

	// Two rotations with writes in between: each one 410s the parked tail
	// and forces a full re-bootstrap through the delayed transport.
	for i := 0; i < 2; i++ {
		if _, err := pri.svc.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		loadCSV(t, pri.svc, "t", "", rowsCSV(300+i*100, 400+i*100))
		waitCaughtUp(t, rep, pri)
	}
	close(stop)
	wg.Wait()

	if st := rep.Stats(); st.ReplSyncs < 3 {
		t.Fatalf("replica syncs = %d, want >= 3 (bootstrap + 2 rotation resyncs)", st.ReplSyncs)
	}
	if slow.Hits() < 3 {
		t.Fatalf("snapshot delay rule fired %d times, want >= 3", slow.Hits())
	}
	assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())
}

// TestTornFrameAtRecordBoundary tears the shipped stream in the two ways
// that matter: a cut exactly on a frame boundary (a complete prefix — the
// replica must apply it all and simply re-poll) and a cut a few bytes
// into the next frame (a torn record — the partial frame must be left
// unconsumed and re-requested). Both must converge bit-identically.
func TestTornFrameAtRecordBoundary(t *testing.T) {
	cuts := map[string]func([]byte) []byte{
		// Exactly at the end of the first frame.
		"boundary": func(body []byte) []byte {
			_, n, err := persist.ParseFrame(body)
			if err != nil || n == 0 {
				return body
			}
			return body[:n]
		},
		// Three bytes into the second frame (frames are >= 9 bytes, so
		// this is always mid-frame).
		"boundary+3": func(body []byte) []byte {
			_, n, err := persist.ParseFrame(body)
			if err != nil || n == 0 || n+3 > len(body) {
				return body
			}
			return body[:n+3]
		},
	}
	for name, cut := range cuts {
		t.Run(name, func(t *testing.T) {
			pri := startPrimary(t)
			loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 200))
			loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,1\n")

			tr := &faultinject.Transport{}
			torn := tr.Add(&faultinject.Rule{Path: WALPath, Count: 4, Mutate: cut})

			rep, _ := startFaultReplica(t, pri.srv.URL, tr)
			// Several separate loads → several WAL frames, so cut responses
			// really carry more than one frame.
			for i := 0; i < 5; i++ {
				loadCSV(t, pri.svc, "t", "", rowsCSV(200+i*30, 230+i*30))
			}
			waitCaughtUp(t, rep, pri)
			if torn.Hits() == 0 {
				t.Fatal("mutate rule never fired; test exercised nothing")
			}
			assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())
		})
	}
}

// TestBootstrapRetryBackoff drops the first snapshot fetches: the Run
// loop must keep retrying with backoff (counting each retry in /stats),
// serve reads throughout, and converge once the primary is reachable.
func TestBootstrapRetryBackoff(t *testing.T) {
	pri := startPrimary(t)
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 100))
	loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,1\n1,2\n")

	tr := &faultinject.Transport{}
	drops := tr.Add(&faultinject.Rule{Path: SnapshotPath, Count: 4, Drop: true})

	rep, _ := startFaultReplica(t, pri.srv.URL, tr)

	// Reads serve (empty catalog) while bootstrap retries behind the scenes.
	if tables := rep.Tables(); len(tables) != 0 {
		t.Fatalf("pre-bootstrap replica serves tables: %v", tables)
	}

	waitCaughtUp(t, rep, pri)
	st := rep.Stats()
	if drops.Hits() != 4 {
		t.Fatalf("drop rule fired %d times, want 4", drops.Hits())
	}
	if st.ReplRetries < 4 {
		t.Fatalf("replRetries = %d, want >= 4 (one per dropped bootstrap)", st.ReplRetries)
	}
	if st.ReplState != service.ReplStateStreaming {
		t.Fatalf("replState = %q after convergence, want %q", st.ReplState, service.ReplStateStreaming)
	}
	if st.Degraded || st.PromoteEligible {
		t.Fatalf("healthy replica still reports degraded=%v promoteEligible=%v", st.Degraded, st.PromoteEligible)
	}
	assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())
}

// TestDegradedThenRecovers kills the stream long enough to cross both
// circuit-breaker thresholds, then restores it: the replica must walk
// degraded → promote-eligible → streaming without a resync-induced gap.
func TestDegradedThenRecovers(t *testing.T) {
	pri := startPrimary(t)
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 100))
	loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,1\n")

	tr := &faultinject.Transport{}
	rep, _ := startFaultReplica(t, pri.srv.URL, tr)
	waitCaughtUp(t, rep, pri)

	// 6 consecutive dropped polls: past DegradedAfter (2) and
	// PromoteAfter (3).
	outage := tr.Add(&faultinject.Rule{Path: WALPath, Count: 6, Drop: true})
	waitState(t, rep, func(st service.Stats) bool { return st.PromoteEligible }, "promote-eligible during outage")

	// Outage ends (rule exhausts itself); new writes flow again.
	loadCSV(t, pri.svc, "t", "", rowsCSV(100, 150))
	waitCaughtUp(t, rep, pri)
	waitState(t, rep, func(st service.Stats) bool {
		return st.ReplState == service.ReplStateStreaming && !st.Degraded
	}, "streaming after outage")
	if outage.Hits() != 6 {
		t.Fatalf("outage rule fired %d times, want 6", outage.Hits())
	}
	assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())
}
