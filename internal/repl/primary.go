package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/persist"
	"repro/internal/service"
)

// Primary serves a database's snapshot and WAL tail to followers. It
// wraps the serving layer (for on-demand checkpoints) and its durability
// manager (for tail reads); mount it next to the service's own handler.
type Primary struct {
	svc *service.DB
	mgr *persist.Manager

	// PollWait bounds how long an empty WAL tail request parks before
	// answering 204 (default 25s — under common proxy timeouts).
	PollWait time.Duration
	// MaxChunk bounds one tail response (default 1 MB); a single record
	// larger than this is still shipped whole.
	MaxChunk int
}

// NewPrimary builds the replication endpoints for a durable service.
func NewPrimary(svc *service.DB, mgr *persist.Manager) *Primary {
	return &Primary{svc: svc, mgr: mgr, PollWait: 25 * time.Second, MaxChunk: 1 << 20}
}

// Mount registers the replication endpoints on mux.
func (p *Primary) Mount(mux *http.ServeMux) {
	mux.HandleFunc(SnapshotPath, p.handleSnapshot)
	mux.HandleFunc(WALPath, p.handleWAL)
}

// handleSnapshot streams the checkpoint snapshot file. The first
// follower of a never-checkpointed primary triggers a checkpoint, so the
// served snapshot plus the (now fresh) WAL always covers the full state.
// The epoch lives in the snapshot header; followers decode it from the
// stream, so a checkpoint racing this handler at worst hands out the
// previous complete snapshot, whose epoch the WAL endpoint then reports
// as rotated.
func (p *Primary) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		replError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	if !p.observeTerm(w, r) {
		return
	}
	if id := followerID(r); id != "" {
		p.svc.NoteFollowerSync(id)
	}
	path := p.mgr.SnapshotPath()
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		if _, cerr := p.svc.Checkpoint(); cerr != nil {
			replError(w, http.StatusInternalServerError, fmt.Errorf("creating bootstrap snapshot: %w", cerr))
			return
		}
	} else if err != nil {
		replError(w, http.StatusInternalServerError, err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		replError(w, http.StatusInternalServerError, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = io.Copy(w, f)
}

// handleWAL answers one long-poll tail request: committed frames from
// the requested offset, 204 when caught up, 410 when the epoch was
// checkpointed away. Every response carries the primary's position
// headers. The connected-follower gauge counts requests currently inside
// this handler — with followers parked in long polls, that is the number
// of attached replicas.
func (p *Primary) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		replError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	q := r.URL.Query()
	epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		replError(w, http.StatusBadRequest, fmt.Errorf("bad epoch %q", q.Get("epoch")))
		return
	}
	offset, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil {
		replError(w, http.StatusBadRequest, fmt.Errorf("bad offset %q", q.Get("offset")))
		return
	}
	if !p.observeTerm(w, r) {
		return
	}
	p.noteFollower(r)
	p.svc.FollowerDelta(1)
	defer p.svc.FollowerDelta(-1)

	deadline := time.Now().Add(p.PollWait)
	for {
		// Grab the change channel before reading: a commit landing between
		// the read and the park then wakes us instead of being missed.
		changed := p.mgr.Changed()
		tail, err := p.mgr.TailRead(epoch, offset, p.MaxChunk)
		switch {
		case errors.Is(err, persist.ErrEpochGone):
			setTailHeaders(w, tail)
			w.WriteHeader(http.StatusGone)
			return
		case err != nil:
			replError(w, http.StatusInternalServerError, err)
			return
		case len(tail.Data) > 0:
			setTailHeaders(w, tail)
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(tail.Data)
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			setTailHeaders(w, tail)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		park := time.NewTimer(remain)
		select {
		case <-changed:
			park.Stop()
		case <-r.Context().Done():
			park.Stop()
			return
		case <-park.C:
		}
	}
}

// observeTerm reconciles the caller's fencing term with this primary's
// own. A request carrying a higher term is proof a newer primary exists:
// this one fences itself (local writes start failing with ErrFenced)
// and — reporting false — refuses to serve the stream, so nobody
// bootstraps from superseded history. Every response carries the
// primary's (possibly just-raised) term for the follower to adopt.
func (p *Primary) observeTerm(w http.ResponseWriter, r *http.Request) bool {
	if v := r.Header.Get(hdrTerm); v != "" {
		if t, err := strconv.ParseUint(v, 10, 64); err == nil && t > p.svc.Term() {
			p.svc.Fence(t, "")
		}
	}
	w.Header().Set(hdrTerm, strconv.FormatUint(p.svc.Term(), 10))
	if fenced, by := p.svc.Fenced(); fenced {
		if by != "" {
			replError(w, http.StatusServiceUnavailable,
				fmt.Errorf("fenced: superseded by primary %s at term %d", by, p.svc.Term()))
		} else {
			replError(w, http.StatusServiceUnavailable,
				fmt.Errorf("fenced: superseded at term %d", p.svc.Term()))
		}
		return false
	}
	return true
}

// followerID extracts a usable follower identity from the request: the
// same validity rules as client query ids (printable ASCII, capped),
// since the id becomes a metric label and a log field on the primary.
func followerID(r *http.Request) string {
	id := r.Header.Get(hdrFollower)
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < '!' || id[i] > '~' {
			return ""
		}
	}
	return id
}

// noteFollower folds one tail poll's ack headers into the service's
// per-follower progress registry: the follower's applied position from
// its previous round and — when it could measure one — the
// commit-to-visible lag of its latest applied chunk.
func (p *Primary) noteFollower(r *http.Request) {
	id := followerID(r)
	if id == "" {
		return
	}
	epoch, _ := strconv.ParseUint(r.Header.Get(hdrAckEpoch), 10, 64)
	offset, _ := strconv.ParseInt(r.Header.Get(hdrAckOffset), 10, 64)
	records, _ := strconv.ParseInt(r.Header.Get(hdrAckRecords), 10, 64)
	lagNanos, _ := strconv.ParseInt(r.Header.Get(hdrVisibleLag), 10, 64)
	p.svc.ObserveFollowerPoll(id, epoch, offset, records, lagNanos)
}

func setTailHeaders(w http.ResponseWriter, t persist.Tail) {
	w.Header().Set(hdrEpoch, strconv.FormatUint(t.Epoch, 10))
	w.Header().Set(hdrCommitted, strconv.FormatInt(t.Committed, 10))
	w.Header().Set(hdrRecords, strconv.FormatInt(t.Records, 10))
	if t.CommitSeq > 0 {
		w.Header().Set(hdrCommitSeq, strconv.FormatInt(t.CommitSeq, 10))
		w.Header().Set(hdrCommitTime, strconv.FormatInt(t.CommitNanos, 10))
		if t.QueryID != "" {
			w.Header().Set(hdrQueryID, t.QueryID)
		}
	}
}

func replError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
