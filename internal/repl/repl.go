// Package repl is the log-shipping replication subsystem: read-only
// replicas that bootstrap from the primary's checkpoint snapshot and
// tail its WAL over HTTP, multiplying read throughput while keeping
// every replica's physical design — optimizer-chosen layouts,
// dictionary code assignments, index definitions — byte-identical to
// the primary's.
//
// Topology and protocol:
//
//   - GET /repl/snapshot streams the primary's checkpoint snapshot (the
//     exact on-disk format; the embedded epoch pairs it with the WAL).
//     A primary that has never checkpointed takes one first, so the
//     response always exists and always covers the pre-WAL state.
//   - GET /repl/wal?epoch=E&offset=N long-polls the committed WAL: the
//     response is raw CRC-framed records starting at N, always ending on
//     a frame boundary, with X-Repl-Epoch / X-Repl-Committed /
//     X-Repl-Records describing the primary's current position (so the
//     follower can account lag). 204 means caught up (poll again), 410
//     means epoch E was rotated away by a checkpoint — re-fetch the
//     snapshot.
//
// Consistency model: eventual. A replica applies shipped records through
// the same replay path recovery uses, under the service's catalog write
// lock, so at equal (epoch, offset) a replica's catalog is bit-identical
// to what the primary would recover to — queries are row-identical, and
// reads during catch-up see a consistent prefix of the primary's
// history. Local writes on a replica are refused with the primary's
// address.
//
// Failover: a Node wraps a service in a runtime-switchable role. POST
// /promote flips a replica into a primary — the tail loop stops, drains
// what the old primary can still serve, and the node starts answering
// /repl/* at fencing term N+1. Terms ride every /repl/* exchange as
// X-Repl-Term: a primary that observes a higher term than its own has
// been superseded and fences itself (writes fail with a clear error
// instead of forking history), and a replica refuses streams from a
// peer reporting a lower term than its own view. POST /demote converts
// a fenced old primary into a replica of the new one; its first
// successful bootstrap clears the fence. Terms are in-memory: ordering
// across full-cluster restarts (and leader election itself) belongs to
// an external coordinator.
package repl

const (
	// SnapshotPath and WALPath are the replication endpoints a primary
	// mounts and a replica calls.
	SnapshotPath = "/repl/snapshot"
	WALPath      = "/repl/wal"

	// PromotePath and DemotePath are the failover admin endpoints a Node
	// mounts: POST /promote flips a replica into a primary at term+1,
	// POST /demote fences a superseded primary and re-points it at the
	// new one.
	PromotePath = "/promote"
	DemotePath  = "/demote"

	hdrEpoch     = "X-Repl-Epoch"
	hdrCommitted = "X-Repl-Committed"
	hdrRecords   = "X-Repl-Records"

	// hdrTerm is the fencing token: requests carry the caller's term,
	// responses the serving node's. Observing a higher term than your own
	// fences you (primary) or is adopted (replica); observing a lower one
	// marks the peer stale.
	hdrTerm = "X-Repl-Term"

	// Write-tracing headers on tail responses: the newest stamped commit
	// covered by the shipped chunk (or by the caught-up position) — its
	// monotonic sequence, wall-clock unix-nanosecond commit time, and the
	// correlation id (X-Query-Id) of the write that produced it. A
	// replica subtracts the commit time from its apply time to measure
	// commit-to-visible lag; absent/zero headers mean no stamp covered
	// the position and no lag can be derived.
	hdrCommitSeq  = "X-Repl-Commit-Seq"
	hdrCommitTime = "X-Repl-Commit-Time"
	hdrQueryID    = "X-Query-Id"

	// Follower ack headers on tail (and snapshot) requests: the
	// follower's identity and its applied position from the previous
	// round, plus its last measured commit-to-visible lag. The primary
	// folds them into its per-follower progress registry
	// (GET /replication) and lag histograms.
	hdrFollower   = "X-Repl-Follower"
	hdrAckEpoch   = "X-Repl-Ack-Epoch"
	hdrAckOffset  = "X-Repl-Ack-Offset"
	hdrAckRecords = "X-Repl-Ack-Records"
	hdrVisibleLag = "X-Repl-Visible-Lag-Ns"
)
