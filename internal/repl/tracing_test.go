package repl

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// TestWriteTracingEndToEnd follows one write across the cluster: the
// load's X-Query-Id is stamped on the WAL commit, shipped to the
// replica, and the replica's measured commit-to-visible lag flows back
// on its next poll into the primary's per-follower registry
// (GET /replication) and lag histogram.
func TestWriteTracingEndToEnd(t *testing.T) {
	pri := startPrimary(t)
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,score:float64", rowsCSV(0, 200))
	if _, err := pri.svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Like startReplica, but the follower id must be set before the tail
	// loop starts (it rides every poll).
	rep := service.New(core.Open(), service.Config{Workers: 1})
	rep.SetReadOnly(pri.srv.URL)
	r := NewReplica(rep, pri.srv.URL)
	r.ID = "tracer-1"
	r.Backoff = 20 * time.Millisecond
	if err := r.Bootstrap(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go r.Run(ctx)
	t.Cleanup(func() {
		cancel()
		rep.Close()
	})
	waitCaughtUp(t, rep, pri)

	// A correlated write on the primary: the commit stamp must carry its id.
	if _, err := pri.svc.Load(service.LoadSpec{
		Table: "t", Format: "csv", QueryID: "trace-load-9",
	}, strings.NewReader(rowsCSV(200, 300))); err != nil {
		t.Fatal(err)
	}
	if seq, nanos, qid := pri.mgr.LastCommit(); qid != "trace-load-9" || seq <= 0 || nanos <= 0 {
		t.Fatalf("commit stamp = (%d, %d, %q), want a stamped trace-load-9", seq, nanos, qid)
	}
	waitCaughtUp(t, rep, pri)

	// The ack ride-along lands one poll after the apply: wait for the
	// primary's registry to show the follower's applied position and a
	// measured commit-to-visible lag.
	deadline := time.Now().Add(10 * time.Second)
	for {
		report := pri.svc.Replication()
		if len(report.Followers) == 1 {
			f := report.Followers[0]
			if f.ID == "tracer-1" && f.Records == rep.Stats().ReplRecords && f.LagSeconds > 0 {
				if f.LagBytes != 0 {
					t.Fatalf("caught-up follower reports lagBytes = %d, want 0", f.LagBytes)
				}
				if report.LastCommitID != "trace-load-9" {
					t.Fatalf("primary lastCommitId = %q, want trace-load-9", report.LastCommitID)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower ack never reached the primary: %+v", report)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The replica published the same lag measurement locally.
	if lag := rep.Stats().ReplVisibleLagMs; lag <= 0 {
		t.Fatalf("replica visibleLagMs = %v, want > 0", lag)
	}

	// And the primary's per-follower lag histogram has samples.
	var buf strings.Builder
	pri.svc.Metrics().WritePrometheus(&buf)
	text := buf.String()
	if !strings.Contains(text, `db_repl_visible_lag_seconds_count{follower="tracer-1"}`) {
		t.Fatalf("per-follower lag histogram missing from /metrics:\n%s", grepLines(text, "db_repl_visible_lag"))
	}
}

// grepLines filters text to lines containing sub (test-failure output).
func grepLines(text, sub string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
