package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/service"
)

// nodeSrv is one failover-capable node: a service behind a Node on an
// httptest server, with a kill switch that aborts every connection while
// "down" — the in-process stand-in for kill -9.
type nodeSrv struct {
	svc  *service.DB
	node *Node
	srv  *httptest.Server
	down atomic.Bool
}

func (n *nodeSrv) gate(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			panic(http.ErrAbortHandler) // drop the connection, no response
		}
		h.ServeHTTP(w, r)
	})
}

// fastTune makes the circuit breaker observable in test time: degraded
// after 2 failures, promote-eligible after 3, backoff in the tens of
// milliseconds.
func fastTune(r *Replica) {
	r.Backoff = 10 * time.Millisecond
	r.BackoffCap = 50 * time.Millisecond
	r.DegradedAfter = 2
	r.PromoteAfter = 3
	r.SnapshotTimeout = 5 * time.Second
	r.PollTimeout = 2 * time.Second
}

// startNodePrimary brings up a durable primary wrapped in a Node (so it
// can be demoted after a failover).
func startNodePrimary(t *testing.T) *nodeSrv {
	t.Helper()
	db, mgr, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(db, service.Config{Workers: 1})
	svc.AttachPersist(mgr, -1)
	n := &nodeSrv{svc: svc}
	n.node = NewNode(svc, NodeConfig{Mgr: mgr, CheckpointWAL: -1, Tune: fastTune, DrainWait: time.Second})
	if err := n.node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	n.node.Mount(mux)
	n.srv = httptest.NewServer(n.gate(mux))
	t.Cleanup(func() {
		n.srv.Close()
		n.node.Stop()
		svc.Close()
		if m := n.node.Manager(); m != nil {
			_ = m.Close()
		}
	})
	return n
}

// startNodeReplica brings up a promotable replica node following url,
// with a data directory held back for promotion storage.
func startNodeReplica(t *testing.T, url string) *nodeSrv {
	t.Helper()
	dir := t.TempDir()
	svc := service.New(core.Open(), service.Config{Workers: 1})
	n := &nodeSrv{svc: svc}
	n.node = NewNode(svc, NodeConfig{
		PrimaryURL:    url,
		CheckpointWAL: -1,
		DrainWait:     time.Second,
		Tune:          fastTune,
		OpenStorage: func() (*persist.Manager, error) {
			_, mgr, err := persist.Open(persist.Options{Dir: dir, Fresh: true})
			return mgr, err
		},
	})
	if err := n.node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	n.node.Mount(mux)
	n.srv = httptest.NewServer(n.gate(mux))
	t.Cleanup(func() {
		n.srv.Close()
		n.node.Stop()
		svc.Close()
		if m := n.node.Manager(); m != nil {
			_ = m.Close()
		}
	})
	return n
}

// waitMgrCaughtUp blocks until follower's applied position equals the
// primary manager's committed WAL at its current epoch.
func waitMgrCaughtUp(t *testing.T, follower *service.DB, mgr *persist.Manager) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := follower.Stats()
		if st.Role == "replica" && !st.Fenced &&
			st.ReplEpoch == mgr.Epoch() && st.ReplOffset == mgr.WALSize() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := follower.Stats()
	t.Fatalf("follower never caught up: at (%d, %d) fenced=%v, primary at (%d, %d)",
		st.ReplEpoch, st.ReplOffset, st.Fenced, mgr.Epoch(), mgr.WALSize())
}

func waitState(t *testing.T, svc *service.DB, pred func(service.Stats) bool, what string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if pred(svc.Stats()) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s (stats: %+v)", what, svc.Stats())
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// TestFailoverPromoteFenceRejoin is the failover acceptance test, fully
// in-process and deterministic (run under -race):
//
//  1. primary A streams to replica B, then dies mid-stream;
//  2. B degrades, becomes promote-eligible, and is promoted to term 2 —
//     accepting writes;
//  3. A is revived; a term-2 tail request fences it (writes rejected
//     with ErrFenced);
//  4. A is demoted to a replica of B, re-bootstraps, and converges to a
//     bit-identical catalog.
func TestFailoverPromoteFenceRejoin(t *testing.T) {
	a := startNodePrimary(t)
	loadCSV(t, a.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 300))
	loadCSV(t, a.svc, "ev", "k:int64,v:int64", "0,100\n1,200\n2,300\n")

	b := startNodeReplica(t, a.srv.URL)
	waitMgrCaughtUp(t, b.svc, a.node.Manager())

	// More writes land on A, and A dies before B necessarily sees them.
	loadCSV(t, a.svc, "t", "", rowsCSV(300, 400))
	a.down.Store(true)

	// B keeps serving reads, reports degraded, then promote-eligible.
	waitState(t, b.svc, func(st service.Stats) bool { return st.Degraded }, "replica degraded")
	waitState(t, b.svc, func(st service.Stats) bool { return st.PromoteEligible }, "promote-eligible")

	// Promote B over HTTP: term 2, writable, serving /repl/*.
	resp, body := postJSON(t, b.srv.URL+PromotePath, map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d: %s", resp.StatusCode, body)
	}
	if got := b.svc.Term(); got != 2 {
		t.Fatalf("promoted term = %d, want 2", got)
	}
	if b.svc.ReadOnly() {
		t.Fatal("promoted node is still read-only")
	}
	if st := b.svc.Stats(); st.Role != "primary" {
		t.Fatalf("promoted role = %s, want primary", st.Role)
	}
	// Writes at term 2 succeed.
	loadCSV(t, b.svc, "t", "", rowsCSV(1000, 1100))

	// Revive A. A tail request carrying term 2 fences it deterministically
	// (in production the new primary's probes or a rejoining follower do
	// this; any /repl/* exchange carries the token).
	a.down.Store(false)
	req, err := http.NewRequest(http.MethodGet, a.srv.URL+WALPath+"?epoch=1&offset=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(hdrTerm, "2")
	fresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fbody, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fencing tail request: status %d (%s), want 503", fresp.StatusCode, fbody)
	}
	if fenced, _ := a.svc.Fenced(); !fenced {
		t.Fatal("old primary did not fence on a higher-term request")
	}

	// The fenced old primary rejects writes with ErrFenced — locally and
	// over HTTP (409).
	if _, err := a.svc.Load(service.LoadSpec{Table: "t", Format: "csv"},
		strings.NewReader("9999,1,x,1.0\n")); !errors.Is(err, service.ErrFenced) {
		t.Fatalf("fenced primary write error = %v, want ErrFenced", err)
	}
	wresp, werr := http.Post(a.srv.URL+"/load?table=t&format=csv", "text/csv",
		strings.NewReader("9999,1,x,1.0\n"))
	if werr != nil {
		t.Fatal(werr)
	}
	wbody, _ := io.ReadAll(wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusConflict || !strings.Contains(string(wbody), "fenced") {
		t.Fatalf("fenced primary /load: status %d body %s, want 409 mentioning fenced", wresp.StatusCode, wbody)
	}

	// Demote A behind B. It re-bootstraps from B's snapshot (clearing the
	// fence) and catches up with further writes.
	dresp, dbody := postJSON(t, a.srv.URL+DemotePath, map[string]any{"primary": b.srv.URL, "term": 2})
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("demote: status %d: %s", dresp.StatusCode, dbody)
	}
	loadCSV(t, b.svc, "t", "", rowsCSV(1100, 1200))
	waitMgrCaughtUp(t, a.svc, b.node.Manager())

	st := a.svc.Stats()
	if st.Role != "replica" || st.Fenced || st.ReplPrimary != b.srv.URL {
		t.Fatalf("rejoined node: role=%s fenced=%v primary=%s, want clean replica of %s",
			st.Role, st.Fenced, st.ReplPrimary, b.srv.URL)
	}
	if st.Term != 2 {
		t.Fatalf("rejoined node term = %d, want 2", st.Term)
	}
	// Local writes now name the new primary.
	if _, err := a.svc.Load(service.LoadSpec{Table: "t", Format: "csv"},
		strings.NewReader("9999,1,x,1.0\n")); !errors.Is(err, service.ErrReadOnly) ||
		!strings.Contains(err.Error(), b.srv.URL) {
		t.Fatalf("rejoined replica write error = %v, want ErrReadOnly naming %s", err, b.srv.URL)
	}

	// Catalogs converged bit-identically (A's lost tail was discarded with
	// its superseded history; B's post-promotion writes are present).
	assertReplicaIdentical(t, b.svc.Unwrap(), a.svc.Unwrap())
}

// TestPromoteIdempotent promotes the same node twice: the second call is
// a no-op reporting the current term.
func TestPromoteIdempotent(t *testing.T) {
	a := startNodePrimary(t)
	loadCSV(t, a.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 50))
	b := startNodeReplica(t, a.srv.URL)
	waitMgrCaughtUp(t, b.svc, a.node.Manager())

	term1, err := b.node.Promote()
	if err != nil {
		t.Fatal(err)
	}
	term2, err := b.node.Promote()
	if err != nil {
		t.Fatalf("second promote errored: %v", err)
	}
	if term1 != term2 {
		t.Fatalf("idempotent promote changed the term: %d then %d", term1, term2)
	}
}

// TestDemoteStaleTerm rejects a demote carrying a term below the node's
// own — a delayed command from a dead coordinator must not fence a
// current primary.
func TestDemoteStaleTerm(t *testing.T) {
	a := startNodePrimary(t)
	loadCSV(t, a.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 50))
	a.svc.AdoptTerm(5)

	if err := a.node.Demote("http://example.invalid:1", 3); err == nil {
		t.Fatal("stale-term demote accepted")
	}
	resp, body := postJSON(t, a.srv.URL+DemotePath, map[string]any{"primary": "http://example.invalid:1", "term": 3})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-term demote over HTTP: status %d (%s), want 409", resp.StatusCode, body)
	}
	if fenced, _ := a.svc.Fenced(); fenced {
		t.Fatal("stale demote fenced the primary")
	}
	if a.svc.ReadOnly() {
		t.Fatal("stale demote flipped the primary read-only")
	}
}

// TestPromoteWithoutStorage: a replica with no data directory and no
// OpenStorage hook cannot become a primary (it could not feed followers);
// the promote fails cleanly and the tail loop resumes.
func TestPromoteWithoutStorage(t *testing.T) {
	a := startNodePrimary(t)
	loadCSV(t, a.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 50))

	svc := service.New(core.Open(), service.Config{Workers: 1})
	defer svc.Close()
	node := NewNode(svc, NodeConfig{PrimaryURL: a.srv.URL, Tune: fastTune, DrainWait: 100 * time.Millisecond})
	if err := node.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	waitMgrCaughtUp(t, svc, a.node.Manager())

	if _, err := node.Promote(); err == nil {
		t.Fatal("promote without storage succeeded")
	}
	if !svc.ReadOnly() {
		t.Fatal("failed promote left the node writable")
	}
	// The tail loop restarted: new writes still arrive.
	loadCSV(t, a.svc, "t", "", rowsCSV(50, 80))
	waitMgrCaughtUp(t, svc, a.node.Manager())
}

// TestReplicaRejectsStalePrimary covers both sides of the term check: a
// higher-term replica polling an old primary fences it (the request
// token is observed before anything is served), and a response that
// still carries a lower term — a peer that ignored the token, e.g.
// through a header-stripping proxy — is refused outright.
func TestReplicaRejectsStalePrimary(t *testing.T) {
	pri := startPrimary(t) // term 1
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 50))

	svc := service.New(core.Open(), service.Config{Workers: 1})
	defer svc.Close()
	svc.SetReadOnly(pri.srv.URL)
	rep := NewReplica(svc, pri.srv.URL)
	if err := rep.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	svc.AdoptTerm(3) // a newer primary exists elsewhere
	if err := rep.poll(context.Background()); err == nil {
		t.Fatal("poll against a superseded primary succeeded")
	}
	if fenced, _ := pri.svc.Fenced(); !fenced {
		t.Fatal("superseded primary was not fenced by the higher-term poll")
	}

	// A response reporting a lower term than our own view is stale even if
	// the peer never fenced.
	stale := &http.Response{Header: http.Header{hdrTerm: []string{"2"}}}
	if err := rep.checkTerm(stale); !errors.Is(err, errStalePrimary) {
		t.Fatalf("checkTerm on a term-2 response at local term 3: %v, want errStalePrimary", err)
	}
	// An equal or higher term is adopted.
	newer := &http.Response{Header: http.Header{hdrTerm: []string{"5"}}}
	if err := rep.checkTerm(newer); err != nil {
		t.Fatal(err)
	}
	if got := svc.Term(); got != 5 {
		t.Fatalf("term after adopting 5 = %d", got)
	}
}

// TestHealthzReportsFailoverStates walks /healthz through ok → degraded →
// fenced.
func TestHealthzReportsFailoverStates(t *testing.T) {
	a := startNodePrimary(t)
	loadCSV(t, a.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 50))

	health := func(srv *nodeSrv) map[string]any {
		t.Helper()
		resp, err := http.Get(srv.srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz status %d", resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	if h := health(a); h["status"] != "ok" || h["role"] != "primary" {
		t.Fatalf("healthy primary /healthz = %v", h)
	}

	b := startNodeReplica(t, a.srv.URL)
	waitMgrCaughtUp(t, b.svc, a.node.Manager())
	if h := health(b); h["status"] != "ok" || h["role"] != "replica" {
		t.Fatalf("healthy replica /healthz = %v", h)
	}

	a.down.Store(true)
	waitState(t, b.svc, func(st service.Stats) bool { return st.Degraded }, "replica degraded")
	if h := health(b); h["status"] != "degraded" {
		t.Fatalf("degraded replica /healthz = %v", h)
	}
	a.down.Store(false)

	a.svc.Fence(7, "http://new-primary:1")
	if h := health(a); h["status"] != "fenced" {
		t.Fatalf("fenced primary /healthz = %v", h)
	}
}
