package repl

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/persist"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/storage"
)

// primary is a durable service with the replication endpoints mounted on
// an httptest server.
type primary struct {
	svc *service.DB
	mgr *persist.Manager
	srv *httptest.Server
}

func startPrimary(t *testing.T) *primary {
	t.Helper()
	db, mgr, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(db, service.Config{Workers: 1})
	svc.AttachPersist(mgr, -1) // manual checkpoints only
	p := NewPrimary(svc, mgr)
	p.PollWait = 200 * time.Millisecond
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	p.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
		mgr.Close()
	})
	return &primary{svc: svc, mgr: mgr, srv: srv}
}

// startReplica bootstraps a read-only follower of the given URL and runs
// its tail loop until the test ends.
func startReplica(t *testing.T, url string) (*service.DB, *Replica) {
	t.Helper()
	svc := service.New(core.Open(), service.Config{Workers: 1})
	svc.SetReadOnly(url)
	rep := NewReplica(svc, url)
	rep.Backoff = 20 * time.Millisecond
	if err := rep.Bootstrap(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go rep.Run(ctx)
	t.Cleanup(func() {
		cancel()
		svc.Close()
	})
	return svc, rep
}

// loadCSV streams CSV rows into the primary through the service's bulk
// loader (each batch is WAL-logged exactly as over HTTP).
func loadCSV(t *testing.T, svc *service.DB, table, create, body string) {
	t.Helper()
	spec := service.LoadSpec{Table: table, Format: "csv", CreateSpec: create}
	if _, err := svc.Load(spec, strings.NewReader(body)); err != nil {
		t.Fatalf("load %s: %v", table, err)
	}
}

func rowsCSV(lo, hi int) string {
	var sb strings.Builder
	for i := lo; i < hi; i++ {
		fmt.Fprintf(&sb, "%d,%d,city-%d,%d.%02d\n", i, i%7, i%13, i%50, i%100)
	}
	return sb.String()
}

// waitCaughtUp blocks until the replica's applied position equals the
// primary's committed WAL at its current epoch.
func waitCaughtUp(t *testing.T, rep *service.DB, pri *primary) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := rep.Stats()
		if st.ReplEpoch == pri.mgr.Epoch() && st.ReplOffset == pri.mgr.WALSize() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := rep.Stats()
	t.Fatalf("replica never caught up: at (%d, %d), primary at (%d, %d)",
		st.ReplEpoch, st.ReplOffset, pri.mgr.Epoch(), pri.mgr.WALSize())
}

// diffQueries is the cross-engine differential suite over the replicated
// tables.
func diffQueries(db *core.DB) map[string]plan.Node {
	nameCode, _ := db.Catalog().Table("t").Dicts[2].Code("city-3")
	return map[string]plan.Node{
		"full-scan": plan.Scan{Table: "t", Cols: []int{0, 1, 2, 3}},
		"filter": plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(100)},
			Cols:   []int{0, 2},
		},
		"string-eq": plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 2, Op: expr.Eq, Val: nameCode},
			Cols:   []int{0, 2},
		},
		"group-agg": plan.Aggregate{
			Child:   plan.Scan{Table: "t", Cols: []int{1, 0, 3}},
			GroupBy: []int{0},
			Aggs: []expr.AggSpec{
				{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "s"},
				{Kind: expr.Avg, Arg: expr.FloatCol(2), Name: "avg"},
				{Kind: expr.Count, Name: "n"},
			},
		},
		"join": plan.HashJoin{
			Left:     plan.Scan{Table: "t", Cols: []int{1, 0}},
			Right:    plan.Scan{Table: "ev", Cols: []int{0, 1}},
			LeftKey:  1,
			RightKey: 0,
		},
		"sort-limit": plan.Limit{
			Child: plan.Sort{
				Child: plan.Scan{Table: "t", Cols: []int{3, 0}},
				Keys:  []plan.SortKey{{Pos: 0, Desc: true}, {Pos: 1}},
			},
			N: 25,
		},
	}
}

// assertReplicaIdentical checks row identity across all five engines and
// byte-identity of the replicated physical design (layouts, partitions,
// dictionaries, index defs) via the canonical snapshot encoding.
func assertReplicaIdentical(t *testing.T, pri, rep *core.DB) {
	t.Helper()
	engines := []string{"jit", "volcano", "bulk", "hyrise", "vector"}
	for name, q := range diffQueries(pri) {
		for _, eng := range engines {
			want, err := pri.QueryWith(eng, q)
			if err != nil {
				t.Fatalf("%s on primary/%s: %v", name, eng, err)
			}
			got, err := rep.QueryWith(eng, q)
			if err != nil {
				t.Fatalf("%s on replica/%s: %v", name, eng, err)
			}
			if !result.Equal(want, got) {
				t.Fatalf("query %s on engine %s: replica differs (%d vs %d rows)",
					name, eng, want.Len(), got.Len())
			}
		}
	}
	var a, b bytes.Buffer
	if _, err := persist.WriteSnapshot(&a, pri, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.WriteSnapshot(&b, rep, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("replica catalog is not bit-identical to the primary's")
	}
}

// TestReplicationDifferential is the subsystem's acceptance test:
// optimize → snapshot → streamed inserts → catch-up, then row-identical
// results on every engine, a bit-identical physical design, and write
// refusal with the primary's address.
func TestReplicationDifferential(t *testing.T) {
	pri := startPrimary(t)

	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 400))
	loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,100\n1,200\n2,300\n3,400\n")
	pri.svc.AddWorkload("narrow", plan.Aggregate{
		Child: plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(50)},
			Cols:   []int{1, 3},
		},
		Aggs: []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "s"}},
	}, 0.9)
	pri.svc.AddWorkload("wide", plan.Scan{Table: "t", Cols: []int{0, 1, 2, 3}}, 0.1)
	if _, err := pri.svc.OptimizeLayouts(); err != nil {
		t.Fatal(err)
	}
	if _, err := pri.svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rep, _ := startReplica(t, pri.srv.URL)

	// Post-snapshot mutations arrive purely through the shipped WAL,
	// including dictionary growth (new city values) and an index.
	loadCSV(t, pri.svc, "t", "", rowsCSV(400, 650))
	var sb strings.Builder
	for i := 650; i < 700; i++ {
		fmt.Fprintf(&sb, "%d,%d,newtown-%d,%d.%02d\n", i, i%7, i%3, i%50, i%100)
	}
	loadCSV(t, pri.svc, "t", "", sb.String())

	waitCaughtUp(t, rep, pri)
	assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())

	// Lag accounting converged to zero.
	st := rep.Stats()
	if st.Role != "replica" || st.ReplicationLagBytes != 0 || st.ReplicationLagRecords != 0 {
		t.Fatalf("replica stats: role=%s lag=%d bytes/%d records, want replica at 0/0",
			st.Role, st.ReplicationLagBytes, st.ReplicationLagRecords)
	}
	if st.ReplOffset == 0 || st.ReplRecords == 0 {
		t.Fatalf("replica applied nothing: offset=%d records=%d", st.ReplOffset, st.ReplRecords)
	}

	// Local writes are refused with 409 and the primary's address.
	repSrv := httptest.NewServer(rep.Handler())
	defer repSrv.Close()
	resp, err := http.Post(repSrv.URL+"/load?table=t&format=csv", "text/csv", strings.NewReader("1,1,x,1.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replica /load: status %d, want 409 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), pri.srv.URL) {
		t.Fatalf("409 body does not name the primary: %s", body)
	}
	resp, err = http.Post(repSrv.URL+"/optimize", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replica /optimize: status %d, want 409", resp.StatusCode)
	}
	if _, err := rep.Query(plan.Insert{Table: "ev", Rows: [][]storage.Word{{storage.EncodeInt(9), storage.EncodeInt(9)}}}); err == nil {
		t.Fatal("replica accepted a local insert")
	}
}

// TestEpochRotationMidTail checkpoints the primary while a follower is
// parked mid-tail: the follower must resync from the new snapshot without
// duplicating rows and converge bit-identically again.
func TestEpochRotationMidTail(t *testing.T) {
	pri := startPrimary(t)
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 300))
	loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,100\n1,200\n")

	rep, _ := startReplica(t, pri.srv.URL)
	waitCaughtUp(t, rep, pri)
	epochBefore := rep.Stats().ReplEpoch

	// Rotate while the follower tails; its epoch is discarded.
	if _, err := pri.svc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	loadCSV(t, pri.svc, "t", "", rowsCSV(300, 450))

	waitCaughtUp(t, rep, pri)
	st := rep.Stats()
	if st.ReplEpoch <= epochBefore {
		t.Fatalf("replica epoch %d did not advance past %d after rotation", st.ReplEpoch, epochBefore)
	}
	if st.ReplSyncs < 2 {
		t.Fatalf("replica syncs = %d, want >= 2 (bootstrap + rotation resync)", st.ReplSyncs)
	}
	// Row counts equal — a duplicated replay would double post-rotation rows.
	if p, r := pri.svc.Unwrap().Catalog().Table("t").Rows(), rep.Unwrap().Catalog().Table("t").Rows(); p != r {
		t.Fatalf("row count diverged: primary %d, replica %d", p, r)
	}
	assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())
}

// TestTornStreamRecovers ships the WAL through a proxy that truncates
// tail responses mid-record: the replica must apply the whole-frame
// prefix, re-request the torn remainder and still converge.
func TestTornStreamRecovers(t *testing.T) {
	pri := startPrimary(t)
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 200))
	loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,1\n")

	var torn atomic.Int32
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(pri.srv.URL + r.URL.String())
		if err != nil {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		for _, h := range []string{hdrEpoch, hdrCommitted, hdrRecords} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		// Frames are >= 9 bytes, so cutting 3 bytes always tears the last
		// record (the first few WAL responses only).
		if r.URL.Path == WALPath && resp.StatusCode == http.StatusOK &&
			len(body) > 3 && torn.Add(1) <= 3 {
			body = body[:len(body)-3]
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(body)
	}))
	defer proxy.Close()

	rep, _ := startReplica(t, proxy.URL)
	loadCSV(t, pri.svc, "t", "", rowsCSV(200, 350))
	waitCaughtUp(t, rep, pri)
	if torn.Load() == 0 {
		t.Fatal("proxy never truncated a response; test exercised nothing")
	}
	assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())
}

// TestConcurrentQueryDuringApply serves reads from the replica while the
// apply loop is streaming mutations in — the race test for the shared
// catalog lock (run under -race).
func TestConcurrentQueryDuringApply(t *testing.T) {
	pri := startPrimary(t)
	loadCSV(t, pri.svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 200))
	loadCSV(t, pri.svc, "ev", "k:int64,v:int64", "0,1\n1,2\n")
	rep, _ := startReplica(t, pri.srv.URL)
	waitCaughtUp(t, rep, pri)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	q := plan.Aggregate{
		Child:   plan.Scan{Table: "t", Cols: []int{1, 0}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "n"}},
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rep.Query(q); err != nil {
					t.Errorf("replica query during apply: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		loadCSV(t, pri.svc, "t", "", rowsCSV(200+i*40, 240+i*40))
	}
	waitCaughtUp(t, rep, pri)
	close(stop)
	wg.Wait()
	assertReplicaIdentical(t, pri.svc.Unwrap(), rep.Unwrap())
}

// TestApplyReplicatedFrames covers the chunk-apply contract directly:
// whole frames apply, a torn tail is left unconsumed, a corrupted frame
// stops the apply with partial progress.
func TestApplyReplicatedFrames(t *testing.T) {
	// Produce a real WAL: create a table, insert rows.
	db, mgr, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	svc := service.New(db, service.Config{Workers: 1})
	defer svc.Close()
	svc.AttachPersist(mgr, -1)
	loadCSV(t, svc, "t", "id:int64,grp:int64,name:string,price:float64", rowsCSV(0, 50))
	tail, err := mgr.TailRead(mgr.Epoch(), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	chunk := tail.Data

	fresh := func() *service.DB {
		s := service.New(core.Open(), service.Config{Workers: 1})
		t.Cleanup(s.Close)
		return s
	}

	// Whole chunk applies cleanly.
	rep := fresh()
	consumed, applied, err := rep.ApplyReplicated(chunk, mgr.Epoch())
	if err != nil || consumed != len(chunk) || applied == 0 {
		t.Fatalf("full apply: consumed %d/%d, applied %d, err %v", consumed, len(chunk), applied, err)
	}
	if got := rep.Unwrap().Catalog().Table("t").Rows(); got != 50 {
		t.Fatalf("replica rows = %d, want 50", got)
	}

	// Torn tail: the partial frame stays unconsumed, the rest applies on
	// the re-request.
	rep = fresh()
	cut := len(chunk) - 3
	consumed, _, err = rep.ApplyReplicated(chunk[:cut], mgr.Epoch())
	if err != nil {
		t.Fatalf("torn apply errored: %v", err)
	}
	if consumed >= cut {
		t.Fatalf("torn apply consumed %d of %d — consumed a partial frame", consumed, cut)
	}
	c2, _, err := rep.ApplyReplicated(chunk[consumed:], mgr.Epoch())
	if err != nil || consumed+c2 != len(chunk) {
		t.Fatalf("resumed apply: consumed %d+%d of %d, err %v", consumed, c2, len(chunk), err)
	}
	if got := rep.Unwrap().Catalog().Table("t").Rows(); got != 50 {
		t.Fatalf("after resume rows = %d, want 50", got)
	}

	// Corrupt frame: error, consumption stops before it.
	rep = fresh()
	bad := append([]byte(nil), chunk...)
	bad[len(bad)-1] ^= 0xff
	consumed, _, err = rep.ApplyReplicated(bad, mgr.Epoch())
	if err == nil {
		t.Fatal("corrupt frame applied without error")
	}
	if consumed >= len(bad) {
		t.Fatal("corrupt frame was consumed")
	}

	// Wrong epoch: the leading epoch marker is rejected.
	rep = fresh()
	if _, _, err := rep.ApplyReplicated(chunk, mgr.Epoch()+7); err == nil {
		t.Fatal("epoch mismatch went unnoticed")
	}
}
