// Package repro's root benchmark suite regenerates every series of the
// paper's evaluation section as Go benchmarks: one Benchmark function per
// table/figure, with sub-benchmarks for each (processor, layout,
// parameter) combination the corresponding plot shows. Run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or select one artefact, e.g.
//
//	go test -bench BenchmarkFig03
//
// The cmd/benchrunner binary prints the same series as paper-style tables.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench/chbench"
	"repro/internal/bench/cnet"
	"repro/internal/bench/sapsd"
	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/vector"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/mem"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sparse"
	"repro/internal/storage"
)

// BenchmarkFig03 regenerates Figure 3: the example query under every
// processing model and storage layout across the selectivity sweep. The
// trailing workers sub-benchmarks add the morsel-parallel JiT engine on
// the paper's headline cell (column layout, sel = 0.5) so serial and
// parallel numbers land in one run.
func BenchmarkFig03(b *testing.B) {
	setup := experiments.NewFig3Setup(1_000_000)
	for _, e := range experiments.Fig3Engines() {
		for _, layout := range []string{"row", "column", "hybrid"} {
			cat := setup.Catalogs[layout]
			for _, s := range []float64{0.0001, 0.01, 0.5, 1.0} {
				q := setup.Query(s)
				b.Run(fmt.Sprintf("%s/%s/sel=%g", e.Name(), layout, s), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e.Run(q, cat)
					}
				})
			}
		}
	}
	cat := setup.Catalogs["column"]
	q := setup.Query(0.5)
	for _, w := range workerCounts() {
		e := jit.NewParallel(par.Options{Workers: w})
		b.Run(fmt.Sprintf("jit/column/sel=0.5/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Run(q, cat)
			}
		})
	}
}

// workerCounts is the scaling sweep: 1 (serial baseline), powers of two up
// to the machine, and the machine itself.
func workerCounts() []int {
	counts := []int{1}
	for w := 2; w < runtime.NumCPU(); w *= 2 {
		counts = append(counts, w)
	}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkParallelScaling measures the morsel scheduler: the Figure 3
// aggregate (fused fast path) and the bare filtered scan (arena-backed row
// emit) on the column layout, for the JiT and vectorized engines across
// the worker sweep. workers=1 is the serial engine — the paper's
// configuration — so each series' first entry is the scaling baseline.
func BenchmarkParallelScaling(b *testing.B) {
	setup := experiments.NewFig3Setup(1_000_000)
	cat := setup.Catalogs["column"]
	agg := setup.Query(0.5)
	scan := agg.(plan.Aggregate).Child
	for _, w := range workerCounts() {
		opt := par.Options{Workers: w}
		engines := map[string]interface {
			Run(plan.Node, *plan.Catalog) *result.Set
		}{
			"jit":    jit.NewParallel(opt),
			"vector": vector.NewParallel(opt),
		}
		for _, name := range []string{"jit", "vector"} {
			e := engines[name]
			b.Run(fmt.Sprintf("%s/aggregate/workers=%d", name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.Run(agg, cat)
				}
			})
			b.Run(fmt.Sprintf("%s/scan/workers=%d", name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					e.Run(scan, cat)
				}
			})
		}
	}
}

// BenchmarkBreakers measures the parallelized pipeline breakers on the
// Figure 3 relation: the full parallel merge sort, the fused top-N
// (ORDER BY … LIMIT 100 — compare its ns/op and bytes/op against sort to
// see the O(k) bound), and the radix-partitioned hash-join build+probe,
// for both parallel-capable engines across the worker sweep. workers=1 is
// the serial engine, each series' scaling baseline.
func BenchmarkBreakers(b *testing.B) {
	setup := experiments.NewFig3Setup(1_000_000)
	cat := setup.Catalogs["column"]
	sortPlan := plan.Sort{
		Child: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(800_000)},
			Cols:   []int{1, 2, 0},
		},
		Keys: []plan.SortKey{{Pos: 0}, {Pos: 1, Desc: true}},
	}
	plans := []struct {
		name string
		p    plan.Node
	}{
		{"sort", sortPlan},
		{"topn", plan.Limit{N: 100, Child: sortPlan}},
		{"join", plan.HashJoin{
			Left: plan.Scan{Table: "R", Cols: []int{0, 1}},
			Right: plan.Scan{
				Table:  "R",
				Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(100_000)},
				Cols:   []int{0, 2},
			},
			LeftKey:  0,
			RightKey: 0,
		}},
	}
	for _, spec := range plans {
		for _, w := range workerCounts() {
			opt := par.Options{Workers: w}
			engines := map[string]exec.Engine{"jit": jit.NewParallel(opt), "vector": vector.NewParallel(opt)}
			if w == 1 {
				engines = map[string]exec.Engine{"jit": jit.New(), "vector": vector.New()}
			}
			for _, name := range []string{"jit", "vector"} {
				e := engines[name]
				b.Run(fmt.Sprintf("%s/%s/workers=%d", spec.name, name, w), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						e.Run(spec.p, cat)
					}
				})
			}
		}
	}
}

// BenchmarkScanMaterialize isolates the arena result path: a full-table
// four-column scan materialized to a result set. allocs/op is the headline
// number — the arena turns one heap slice per row into one per 256 KB
// chunk.
func BenchmarkScanMaterialize(b *testing.B) {
	setup := experiments.NewFig3Setup(1_000_000)
	cat := setup.Catalogs["column"]
	scan := plan.Scan{Table: "R", Cols: []int{1, 2, 3, 4}}
	for _, e := range []exec.Engine{jit.New(), vector.New()} {
		b.Run(e.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.Run(scan, cat)
			}
		})
	}
}

// BenchmarkFig06 regenerates Figure 6's measurement side: replaying
// s_trav_cr address streams against the simulated hierarchy.
func BenchmarkFig06(b *testing.B) {
	geo := mem.TableIII()
	for _, s := range []float64{0.01, 0.1, 0.5, 1.0} {
		atom := pattern.STravCR{N: 1 << 18, W: 16, U: 16, S: s}
		b.Run(fmt.Sprintf("sel=%g", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := mem.NewHierarchy(geo)
				pattern.Simulate(atom, h, 42)
			}
		})
	}
	b.Run("predict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			costmodel.MissesOf(pattern.STravCR{N: 1 << 18, W: 16, U: 16, S: 0.1}, geo)
		}
	})
}

// BenchmarkFig08 regenerates Figure 8: cycles/access plateaus per region
// size (the ns/op of each sub-benchmark is proportional to the simulated
// access cost at that region size).
func BenchmarkFig08(b *testing.B) {
	geo := mem.TableIII()
	for _, region := range []int64{16 << 10, 128 << 10, 4 << 20, 64 << 20} {
		b.Run(fmt.Sprintf("region=%dKB", region>>10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.Fig8Chase(region, 100_000, geo, 7)
			}
		})
	}
}

// BenchmarkFig09 regenerates Figure 9: SAP-SD queries under the JiT and
// HYRISE-style processors on row, column and hybrid layouts.
func BenchmarkFig09(b *testing.B) {
	setup := experiments.NewFig9Setup(5000)
	for _, e := range experiments.Fig9Processors() {
		for _, layout := range []string{"row", "column", "hybrid"} {
			cat := setup.Catalogs[layout]
			for qi, p := range setup.Queries.Plans {
				if qi == 5 {
					continue // the mutating Q6 is covered by BenchmarkFig10
				}
				q := p
				b.Run(fmt.Sprintf("%s/%s/Q%d", e.Name(), layout, qi+1), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e.Run(q, cat)
					}
				})
			}
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: the index-sensitive SAP-SD
// queries with and without indexes (JiT processor).
func BenchmarkFig10(b *testing.B) {
	for _, variant := range []string{"unindexed", "indexed"} {
		setup := experiments.NewFig9Setup(5000)
		if variant == "indexed" {
			for _, l := range []string{"row", "column", "hybrid"} {
				sapsd.RegisterIndexes(setup.Catalogs[l])
			}
		}
		engine := jit.New()
		for _, l := range []string{"row", "column", "hybrid"} {
			cat := setup.Catalogs[l]
			for _, spec := range []struct {
				name string
				ix   int
			}{{"Q7", 6}, {"Q8", 7}} {
				q := setup.Queries.Plans[spec.ix]
				b.Run(fmt.Sprintf("%s/%s/%s", variant, l, spec.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						engine.Run(q, cat)
					}
				})
			}
			b.Run(fmt.Sprintf("%s/%s/Q6-insert", variant, l), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					engine.Run(setup.Data.InsertPlan(1_000_000+i), cat)
				}
			})
		}
	}
}

// BenchmarkFig11 regenerates Figure 11: CH-benchmark analytical queries
// on row, column and hybrid layouts (JiT processor).
func BenchmarkFig11(b *testing.B) {
	cfg := chbench.Config{Warehouses: 2, DistrictsPerW: 10, CustomersPerD: 150, OrdersPerD: 150, Items: 1000, Suppliers: 100, Seed: 1}
	setup := experiments.NewFig11Setup(cfg, 500)
	engine := jit.New()
	for _, l := range []string{"row", "column", "hybrid"} {
		cat := setup.Catalogs[l]
		for _, qi := range chbench.QueryOrder {
			q := setup.Queries[qi]
			b.Run(fmt.Sprintf("%s/Q%d", l, qi), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					engine.Run(q, cat)
				}
			})
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: the CNET catalog queries on row,
// column and hybrid layouts (JiT processor; weight by Table V frequencies
// when reading the results).
func BenchmarkFig12(b *testing.B) {
	cfg := cnet.Config{Products: 50_000, Attrs: 200, Categories: 40, MeanSparse: 6, Seed: 1}
	setup := experiments.NewFig12Setup(cfg)
	engine := jit.New()
	for _, l := range []string{"row", "column", "hybrid"} {
		cat := setup.Catalogs[l]
		for qi := 1; qi <= 4; qi++ {
			q := setup.Queries[qi]
			b.Run(fmt.Sprintf("%s/Q%d-freq%g", l, qi, cnet.Frequencies[qi]), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					engine.Run(q, cat)
				}
			})
		}
	}
}

// BenchmarkAblationVectorVsJit reproduces the vectorization-vs-compilation
// comparison (Sompolski et al. [32], which the paper cites for Figure 3's
// selectivity behaviour) on the example query.
func BenchmarkAblationVectorVsJit(b *testing.B) {
	setup := experiments.NewFig3Setup(500_000)
	engines := map[string]interface {
		Run(plan.Node, *plan.Catalog) *result.Set
	}{
		"vector": vector.New(),
		"jit":    jit.New(),
	}
	for _, name := range []string{"vector", "jit"} {
		e := engines[name]
		for _, s := range []float64{0.001, 0.1, 1.0} {
			q := setup.Query(s)
			cat := setup.Catalogs["column"]
			b.Run(fmt.Sprintf("%s/sel=%g", name, s), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.Run(q, cat)
				}
			})
		}
	}
}

// BenchmarkAblationSparse compares the paper's proposed key-value storage
// for sparse data against dense scans on the CNET catalog shape.
func BenchmarkAblationSparse(b *testing.B) {
	d := cnet.Generate(cnet.Config{Products: 50_000, Attrs: 200, Categories: 40, MeanSparse: 6, Seed: 2})
	rel := d.Products
	store := sparse.FromRelation(rel)
	attr := 100
	b.Run("dense/sum-sparse-attr", func(b *testing.B) {
		a := rel.Access(attr)
		for i := 0; i < b.N; i++ {
			var sum int64
			for row := 0; row < rel.Rows(); row++ {
				if v := a.Data[row*a.Stride+a.Off]; v != storage.Null {
					sum += storage.DecodeInt(v)
				}
			}
		}
	})
	b.Run("sparse/sum-sparse-attr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			store.SumAttr(attr)
		}
	})
	b.Run("dense/point-fetch", func(b *testing.B) {
		buf := make([]storage.Word, rel.Schema.Width())
		for i := 0; i < b.N; i++ {
			rel.RowValues(i%rel.Rows(), buf)
		}
	})
	b.Run("sparse/point-fetch", func(b *testing.B) {
		var buf []storage.Word
		for i := 0; i < b.N; i++ {
			buf = store.MaterializeRow(i%rel.Rows(), buf)
		}
	})
}

// BenchmarkTable4 measures the layout optimizer itself: cut derivation
// plus the BPi search on the ADRC table.
func BenchmarkTable4(b *testing.B) {
	rep := experiments.Table4(experiments.Options{Quick: true})
	if len(rep.Rows) == 0 {
		b.Fatal("table4 report empty")
	}
	b.Run("bpi-adrc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			experiments.Table4(experiments.Options{Quick: true})
		}
	})
}
