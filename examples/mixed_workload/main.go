// Mixed workload: the CH-benchmark scenario the paper's introduction
// motivates — OLTP transactions and OLAP queries on the same
// memory-resident data. The example runs a transaction burst, then the
// analytical queries on row, column and optimizer-chosen hybrid layouts.
package main

import (
	"fmt"
	"time"

	"repro/internal/bench/chbench"
	"repro/internal/costmodel"
	"repro/internal/exec/jit"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
)

func main() {
	cfg := chbench.Config{Warehouses: 2, DistrictsPerW: 10, CustomersPerD: 150, OrdersPerD: 150, Items: 1000, Suppliers: 100, Seed: 1}
	d := chbench.Generate(cfg)
	rowCat := d.Catalog("row", nil)

	// OLTP side: a burst of NewOrder/Payment transactions.
	tx := chbench.NewTx(d, rowCat, 7)
	start := time.Now()
	const txns = 5000
	if err := tx.Mix(txns); err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("ran %d transactions in %v (%.0f tx/s)\n", txns, elapsed.Round(time.Millisecond),
		float64(txns)/elapsed.Seconds())
	fmt.Printf("orderline now holds %d rows\n\n", rowCat.Table("orderline").Rows())

	// Keep all layout siblings consistent with the mutated state.
	d.Orders = rowCat.Table("orders")
	d.Orderline = rowCat.Table("orderline")
	d.Customer = rowCat.Table("customer")
	d.District = rowCat.Table("district")
	d.Stock = rowCat.Table("stock")

	// Optimize layouts for the analytical mix.
	est := costmodel.NewEstimator(rowCat, mem.TableIII())
	opt := layout.NewOptimizer(est)
	w := d.Workload()
	overrides := map[string]storage.Layout{}
	for _, tbl := range []string{"orderline", "orders", "customer"} {
		best, _ := opt.Optimize(tbl, w)
		overrides[tbl] = best
		fmt.Printf("optimizer: %-10s -> %v\n", tbl, best)
	}

	catalogs := map[string]*plan.Catalog{
		"row":    rowCat,
		"column": d.Catalog("column", nil),
		"hybrid": d.Catalog("row", overrides),
	}

	// OLAP side: the Figure 11 queries on each layout.
	engine := jit.New()
	qs := d.Queries()
	fmt.Printf("\n%-8s", "CH query")
	for _, l := range []string{"row", "column", "hybrid"} {
		fmt.Printf("  %10s", l)
	}
	fmt.Println()
	for _, qi := range chbench.QueryOrder {
		fmt.Printf("Q%-7d", qi)
		for _, l := range []string{"row", "column", "hybrid"} {
			start := time.Now()
			engine.Run(qs[qi], catalogs[l])
			fmt.Printf("  %10v", time.Since(start).Round(10*time.Microsecond))
		}
		fmt.Println()
	}
}
