// Layout advisor: the paper's Table IV walked end to end — derive the
// extended reasonable cuts of the SAP-SD ADRC table from queries Q1 and
// Q3, inspect their access patterns, run BPi, and verify the chosen
// decomposition with wall-clock measurements.
package main

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bench/sapsd"
	"repro/internal/costmodel"
	"repro/internal/exec/jit"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	d := sapsd.Generate(sapsd.Config{Customers: 50_000, Seed: 1})
	cat := d.Catalog("row", nil)
	qs := d.Queries(7)
	q1, q3 := qs.Plans[0], qs.Plans[2]
	schema := d.ADRC.Schema

	est := costmodel.NewEstimator(cat, mem.TableIII())
	fmt.Println("Q1: select ADDRNUMBER,NAME_CO,NAME1,NAME2,KUNNR from ADRC where NAME1 like $1 and NAME2 like $2")
	fmt.Println("    pattern:", est.Translate(q1, nil))
	fmt.Println("Q3: select * from ADRC where KUNNR = $1")
	fmt.Println("    pattern:", est.Translate(q3, nil))

	w := (&workload.Workload{Name: "adrc"}).Add("Q1", q1, 1).Add("Q3", q3, 1)
	o := layout.NewOptimizer(est)

	fmt.Println("\nextended reasonable cuts:")
	for i, c := range o.CutsFor("ADRC", w) {
		fmt.Printf("  %d: {%s}\n", i+1, strings.Join(schema.AttrNames(c.Attrs), ","))
	}

	best, cost := o.Optimize("ADRC", w)
	fmt.Println("\nBPi solution (paper Table IVc: {NAME1},{NAME2},{KUNNR},{ADDRNUMBER,NAME_CO},{*}):")
	for _, g := range best.Groups {
		fmt.Printf("  {%s}\n", strings.Join(schema.AttrNames(g), ","))
	}
	fmt.Printf("estimated cost: %.4g cycles\n", cost)

	// Verify with wall-clock runs on materialized layouts.
	engine := jit.New()
	fmt.Printf("\n%-22s %12s %12s\n", "layout", "Q1", "Q3")
	for _, spec := range []struct {
		name   string
		layout storage.Layout
	}{
		{"row (NSM)", storage.NSM(schema.Width())},
		{"column (DSM)", storage.DSM(schema.Width())},
		{"BPi hybrid (PDSM)", best},
	} {
		c := d.Catalog("", map[string]storage.Layout{"ADRC": spec.layout})
		t1 := timeQuery(func() { engine.Run(q1, c) })
		t3 := timeQuery(func() { engine.Run(q3, c) })
		fmt.Printf("%-22s %12v %12v\n", spec.name, t1, t3)
	}
}

func timeQuery(f func()) time.Duration {
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best.Round(time.Microsecond)
}
