// served_client demonstrates the serving surface end to end without any
// external setup: it starts the query service on a loopback listener (the
// same handler cmd/served exposes), then acts as an HTTP client — listing
// tables, running an ad-hoc query, and walking the prepared-statement flow
// (/prepare once, /exec repeatedly), which is how a real application
// should issue its hot queries.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/service"
)

const queryJSON = `{"plan": {
	"op": "aggregate",
	"child": {
		"op": "scan", "table": "R",
		"filter": {"pred": "cmp", "attr": 0, "op": "<", "val": {"int": 100000}},
		"cols": [1, 2, 3, 4]
	},
	"aggs": [
		{"agg": "sum", "arg": {"expr": "col", "attr": 0, "type": "int64"}, "name": "sum_b"},
		{"agg": "sum", "arg": {"expr": "col", "attr": 1, "type": "int64"}, "name": "sum_c"},
		{"agg": "sum", "arg": {"expr": "col", "attr": 2, "type": "int64"}, "name": "sum_d"},
		{"agg": "sum", "arg": {"expr": "col", "attr": 3, "type": "int64"}, "name": "sum_e"}
	]
}}`

func main() {
	// Server side: demo database behind the concurrent service layer.
	s := service.New(service.NewDemoDB(200_000), service.Config{Workers: 0})
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, s.Handler()) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("service listening on", base)

	// Client side: plain HTTP/JSON from here on.
	fmt.Println("\n-- GET /tables")
	show(getJSON(base + "/tables"))

	fmt.Println("\n-- POST /query (ad-hoc, selectivity 0.1)")
	show(postJSON(base+"/query", queryJSON))

	fmt.Println("\n-- POST /prepare")
	prep := postJSON(base+"/prepare", queryJSON)
	show(prep)
	id := prep["id"].(string)

	fmt.Printf("\n-- POST /exec ×3 (statement %s; compiled once, cache-hit after)\n", id)
	for i := 0; i < 3; i++ {
		res := postJSON(base+"/exec", fmt.Sprintf(`{"id": %q}`, id))
		fmt.Printf("  run %d: rows=%v in %vµs\n", i+1, res["rowCount"], res["micros"])
	}

	fmt.Println("\n-- GET /stats")
	show(getJSON(base + "/stats"))
}

func postJSON(url, body string) map[string]any {
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func getJSON(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	return decode(resp)
}

func decode(resp *http.Response) map[string]any {
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("HTTP %d: %v", resp.StatusCode, out)
	}
	return out
}

func show(v map[string]any) {
	data, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(data))
}
