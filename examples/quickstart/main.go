// Quickstart: define a schema, load data, run one query under all three
// storage layouts and all four processing models, and inspect the access
// pattern the cost model assigns to the query.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

func main() {
	// A 12-attribute orders table: the paper's sweet spot for partial
	// decomposition — a few hot attributes, many cold ones.
	schema := storage.NewSchema("orders",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "customer", Type: storage.Int64},
		storage.Attribute{Name: "status", Type: storage.String},
		storage.Attribute{Name: "amount", Type: storage.Int64},
		storage.Attribute{Name: "tax", Type: storage.Int64},
		storage.Attribute{Name: "discount", Type: storage.Int64},
		storage.Attribute{Name: "shipping", Type: storage.Int64},
		storage.Attribute{Name: "note1", Type: storage.Int64},
		storage.Attribute{Name: "note2", Type: storage.Int64},
		storage.Attribute{Name: "note3", Type: storage.Int64},
		storage.Attribute{Name: "note4", Type: storage.Int64},
		storage.Attribute{Name: "note5", Type: storage.Int64},
	)
	const rows = 500_000
	rng := rand.New(rand.NewSource(1))
	b := storage.NewBuilder(schema)
	statuses := make([]string, rows)
	for a := 0; a < schema.Width(); a++ {
		if a == 2 {
			for i := range statuses {
				statuses[i] = []string{"open", "paid", "shipped", "returned"}[rng.Intn(4)]
			}
			b.SetStrings(2, statuses)
			continue
		}
		col := make([]int64, rows)
		for i := range col {
			col[i] = rng.Int63n(100_000)
		}
		b.SetInts(a, col)
	}

	db := core.Open()
	rel := db.CreateTable(b)

	// select sum(amount), sum(tax), count(*) from orders where status='returned'
	returned := rel.Dict(2).MustCode("returned")
	q := plan.Aggregate{
		Child: plan.Scan{
			Table:  "orders",
			Filter: expr.Cmp{Attr: 2, Op: expr.Eq, Val: returned},
			Cols:   []int{3, 4},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "amount"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "tax"},
			{Kind: expr.Count, Name: "n"},
		},
	}

	fmt.Println("access pattern:", db.AccessPattern(q))
	fmt.Printf("estimated cost: %.3g cycles\n\n", db.EstimateCost(q))

	fmt.Println("-- processing models on the N-ary layout --")
	for _, engine := range []string{"volcano", "bulk", "hyrise", "jit"} {
		start := time.Now()
		res, err := db.QueryWith(engine, q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8s %8v   %s", engine, time.Since(start).Round(time.Microsecond), res.Format(nil, 1))
	}

	fmt.Println("\n-- layout optimization (PDSM via BPi) --")
	db.AddWorkload("returns-report", q, 1)
	for _, ch := range db.OptimizeLayouts() {
		fmt.Printf("table %s: %v -> %v (estimated %.3g -> %.3g cycles)\n",
			ch.Table, ch.Old, ch.New, ch.OldCost, ch.NewCost)
	}
	start := time.Now()
	res := db.Query(q)
	fmt.Printf("\njit on optimized layout: %v   %s", time.Since(start).Round(time.Microsecond), res.Format(nil, 1))
}
