// CNET catalog: the paper's wide-and-sparse scenario (Figure 12, Table V)
// — a product catalog relation with hundreds of attributes of which each
// product sets about a dozen, queried by a simulated web application:
// rare category analytics, frequent listings, very frequent detail pages.
package main

import (
	"fmt"
	"time"

	"repro/internal/bench/cnet"
	"repro/internal/costmodel"
	"repro/internal/exec/jit"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
)

func main() {
	cfg := cnet.Config{Products: 50_000, Attrs: 200, Categories: 40, MeanSparse: 6, Seed: 1}
	d := cnet.Generate(cfg)
	fmt.Printf("catalog: %d products x %d attributes (sparse)\n\n", cfg.Products, cfg.Attrs)

	rowCat := d.Catalog("row", nil)
	cnet.RegisterIndexes(rowCat)
	est := costmodel.NewEstimator(rowCat, mem.TableIII())
	best, _ := layout.NewOptimizer(est).Optimize("products", d.Workload(3))
	fmt.Printf("BPi layout: %d partitions (vs %d-attribute N-ary row)\n\n", len(best.Groups), cfg.Attrs)

	catalogs := map[string]*plan.Catalog{
		"row":    rowCat,
		"column": d.Catalog("column", nil),
		"hybrid": d.Catalog("", &best),
	}
	cnet.RegisterIndexes(catalogs["column"])
	cnet.RegisterIndexes(catalogs["hybrid"])

	engine := jit.New()
	qs := d.Queries(3)
	layouts := []string{"row", "column", "hybrid"}

	fmt.Printf("%-14s", "query (freq)")
	for _, l := range layouts {
		fmt.Printf(" %14s", l)
	}
	fmt.Println("   (weighted by Table V frequency)")
	totals := map[string]time.Duration{}
	for qi := 1; qi <= 4; qi++ {
		freq := cnet.Frequencies[qi]
		fmt.Printf("Q%d (%6gx)  ", qi, freq)
		for _, l := range layouts {
			start := time.Now()
			engine.Run(qs[qi], catalogs[l])
			w := time.Duration(float64(time.Since(start)) * freq)
			totals[l] += w
			fmt.Printf(" %14v", w.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Printf("%-14s", "Sum")
	for _, l := range layouts {
		fmt.Printf(" %14v", totals[l].Round(10*time.Microsecond))
	}
	fmt.Println()
}
